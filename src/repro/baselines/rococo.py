"""ROCOCO — a two-round, dependency-collecting external-consistent protocol.

ROCOCO (Mu et al., OSDI 2014) splits each transaction into *pieces*, one per
accessed key, and runs two rounds:

1. **Dispatch round** — the coordinator ships every piece to the server
   owning its key.  The server buffers the piece, records the transaction in
   the key's pending list and replies with the set of transactions currently
   pending on that key (the observed dependencies).
2. **Commit round** — the coordinator aggregates the dependency information,
   assigns the transaction its position in the execution order and asks every
   involved server to execute.  A server executes the buffered piece only
   after every pending transaction ordered before it has executed on that key
   (deferrable pieces are thereby reordered instead of aborted), then replies
   with the read value.  Update transactions therefore never abort.

Read-only transactions are *not* abort-free in ROCOCO: the reproduction
implements them, following the paper's description ("its read-only are not
abort-free and they need to wait for all conflicting update transactions in
order to execute"), as an optimistic two-round snapshot read — each key is
read once per round, a read waits while update pieces are pending on the key,
and the transaction aborts (and is retried by the client) whenever a key's
version changed between the two rounds.  The abort probability therefore
grows with the number of keys read, which is what produces the Figure 8
trend.

The paper disables replication when comparing against ROCOCO; this
implementation accordingly routes every piece to the key's primary replica.

Under the fault plane (and only then) the node is crash-consistent: a
durable per-server piece redo log (:class:`repro.storage.durable_log.
PieceRedoLog`) persists the piece payload at dispatch and the assigned order
before the execute-round reply, a restart restores and replays
logged-but-unexecuted pieces in order, and an **order fence** refuses any
piece ordered below the key's durably-recorded execution frontier.  A
coordinator that crashed after assigning an order re-runs the commit round
on restart so the decided writes are all-or-nothing.  Fail-free runs never
touch any of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.consistency.checkers import check_committed_reads, check_serializability
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.message import Message, MessagePriority
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register
from repro.protocols.runtime import ProtocolRuntime
from repro.storage.durable_log import PieceRedoLog


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class PieceDispatch(Message):
    """Round 1: buffer a piece and collect dependencies."""

    __slots__ = ("txn_id", "key", "is_write", "write_value")
    priority = MessagePriority.COMMIT
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        is_write: bool = False,
        write_value: object = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.is_write = is_write
        self.write_value = write_value

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceDispatchReply(Message):
    __slots__ = ("txn_id", "key", "deps")
    priority = MessagePriority.COMMIT
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        deps: Tuple[TransactionId, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.deps = deps

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40 + 16 * len(self.deps)


class PieceCommit(Message):
    """Round 2: execute the buffered piece in dependency order.

    The piece payload (``is_write`` / ``write_value``) rides along so a
    primary that crashed between the rounds — losing its piece buffer — can
    faithfully recreate the piece from a fault-mode re-send instead of
    degrading the write to a read.
    """

    __slots__ = ("txn_id", "key", "order", "is_write", "write_value")
    priority = MessagePriority.COMMIT
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        order: float = 0.0,
        is_write: bool = False,
        write_value: object = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.order = order
        self.is_write = is_write
        self.write_value = write_value

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceExecuted(Message):
    __slots__ = ("txn_id", "key", "value", "version", "writer")
    priority = MessagePriority.CONTROL
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        version: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.version = version
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceAbort(Message):
    """Fault-plane recovery: withdraw a dispatched-but-uncommitted piece.

    Sent by a restarted coordinator for transactions that crashed between
    their dispatch and commit rounds.  Only pieces that never received an
    execution order are withdrawn — an ordered piece will execute and clean
    itself up (its writes were decided atomically across all keys).
    """

    __slots__ = ("txn_id", "key")
    priority = MessagePriority.CONTROL
    base_size = 48

    def __init__(self, txn_id: TransactionId = None, key: object = None):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48


class SnapshotRead(Message):
    """Read-only transactions: one round of key reads."""

    __slots__ = ("txn_id", "key", "wait_for_pending")
    priority = MessagePriority.READ
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        wait_for_pending: bool = True,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.wait_for_pending = wait_for_pending

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class SnapshotReadReturn(Message):
    __slots__ = ("txn_id", "key", "value", "version", "writer")
    priority = MessagePriority.READ
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        version: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.version = version
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


@dataclass
class _RococoKey:
    """Server-side state of one key."""

    value: object = 0
    version: int = 0
    writer: Optional[TransactionId] = None


@dataclass
class _PendingPiece:
    txn_id: TransactionId
    is_write: bool
    write_value: object
    order: Optional[float] = None  # assigned by the commit round
    executed: bool = False


class RococoNode(ProtocolRuntime):
    """One node of the ROCOCO store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._data: Dict[object, _RococoKey] = {}
        # Per-key pending pieces of dispatched-but-not-executed transactions.
        self._pending: Dict[object, Dict[TransactionId, _PendingPiece]] = {}
        # Fault mode only: the durable piece redo log.  The piece payload is
        # force-written at dispatch, the assigned order before the execute
        # reply, and execution advances the per-key order frontier — the
        # order fence a restarted server enforces.  Executed records double
        # as faithful answers for re-sent commits whose original raced them.
        # Grows with the committed transactions of a run, like the other
        # fault-recovery indexes; fail-free runs never write it.
        self.redo = PieceRedoLog()
        # Fault mode only, durable: order assignments of transactions this
        # node coordinated whose commit round a crash cut short.  The restart
        # re-runs the round so the decided writes land on every key.
        self._crash_completions: Dict[TransactionId, float] = {}
        self.register_handler(PieceDispatch, self.on_dispatch)
        self.register_handler(PieceCommit, self.on_commit)
        self.register_handler(PieceAbort, self.on_piece_abort)
        self.register_handler(SnapshotRead, self.on_snapshot_read)
        # Signal notified whenever a pending set or a key version changes.
        self._progress = self.sim.signal(name=f"rococo-progress@{self.node_id}")

    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        for key in keys:
            if self.primary(key) == self.node_id:
                self._data[key] = _RococoKey(value=initial_value)

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Volatile state: the in-memory piece buffers.

        The executed key states (value/version/writer) are the node's
        durable data, and so are the piece redo log and the coordinator's
        crash-completion entries — the restart rebuilds the pending lists
        from the log and replays ordered-but-unexecuted pieces.
        """
        self._pending.clear()

    def on_restart(self) -> None:
        """Replay the piece redo log, then recover coordinated transactions.

        Server side first: every logged-but-unexecuted piece is restored to
        its key's pending list (so the ``ready()`` waits and the order fence
        see it) and, if it already holds an order, replayed in order by a
        background process.  Coordinator side: an update transaction that
        crashed *after* its order was assigned (``meta.version_hints`` is
        force-written with the order) had its outcome decided — the restart
        re-runs its commit round so no key keeps a partial write; one that
        crashed *before* is withdrawn with ``PieceAbort`` (an unordered piece
        buffered at an alive server would otherwise block every later piece
        on its key, waiting for an order that will never come).
        """
        restored = False
        for record in self.redo.unexecuted_records():
            pending = self._pending.setdefault(record.key, {})
            piece = pending.get(record.txn_id)
            if piece is None:
                piece = _PendingPiece(
                    txn_id=record.txn_id,
                    is_write=record.is_write,
                    write_value=record.write_value,
                    order=record.order,
                )
                pending[record.txn_id] = piece
            restored = True
            if piece.order is not None:
                self.counters["pieces_replayed"] += 1
                self.spawn_process(
                    self._replay_piece(record.key, piece),
                    name=f"rococo-replay:{record.txn_id}",
                )
        if restored:
            self._progress.notify()
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            if crash_phase is not TransactionPhase.PREPARING or meta.is_read_only:
                continue  # read-only rounds buffer no pieces
            self.counters["crash_recoveries"] += 1
            if meta.version_hints:
                # The order was assigned (force-written with version_hints)
                # before the crash: the outcome is decided, finish the
                # commit round instead of tearing the writes.
                self._crash_completions[txn_id] = next(iter(meta.version_hints.values()))
                continue
            for key in sorted(set(meta.read_set) | set(meta.write_set), key=repr):
                primary = self.primary(key)
                if primary != self.node_id:
                    self.send(primary, PieceAbort(txn_id=txn_id, key=key))
                else:
                    # The withdraw a PieceAbort would have performed, applied
                    # locally — including to the piece just restored above.
                    record = self.redo.find(key, txn_id)
                    if record is not None and record.order is None:
                        self.redo.discard(key, txn_id)
                    pending = self._pending.get(key)
                    piece = pending.get(txn_id) if pending is not None else None
                    if piece is not None and piece.order is None:
                        del pending[txn_id]
                        self.counters["pieces_aborted"] += 1
                        self._progress.notify()
        for txn_id in sorted(self._crash_completions):
            self.spawn_process(
                self._complete_crashed_commit(txn_id),
                name=f"rococo-complete:{txn_id}",
            )

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------
    def on_dispatch(self, message: PieceDispatch):
        yield self.cpu(self.service.queue_op_us)
        pending = self._pending.setdefault(message.key, {})
        existing = pending.get(message.txn_id)
        if existing is not None:
            # Fault-mode re-send: the piece is already buffered (and may
            # even be ordered) — answer with the dependencies it would have
            # observed, without resetting its state.
            deps = tuple(t for t in pending if t != message.txn_id)
        else:
            deps = tuple(pending.keys())
            pending[message.txn_id] = _PendingPiece(
                txn_id=message.txn_id,
                is_write=message.is_write,
                write_value=message.write_value,
            )
        if self._fault_mode:
            # Force-write the piece payload before the dispatch reply: once
            # the coordinator has seen the reply it may assign an order, and
            # a crash on this server must not lose the piece it covers.
            self.redo.log_dispatch(
                message.key, message.txn_id, message.is_write, message.write_value
            )
        self._progress.notify()
        self.counters["pieces_dispatched"] += 1
        self.respond(
            message,
            PieceDispatchReply(txn_id=message.txn_id, key=message.key, deps=deps),
        )

    def on_commit(self, message: PieceCommit):
        key = message.key
        pending = self._pending.setdefault(key, {})
        piece = pending.get(message.txn_id)
        if piece is None:
            if self._fault_mode:
                record = self.redo.find(key, message.txn_id)
                if record is not None and record.executed:
                    # Fault-mode re-send racing its own original (or arriving
                    # after a restart replayed the piece): answer with the
                    # durably-logged execution observation, exactly what the
                    # lost original reply carried.
                    read_value, read_version, read_writer = record.reply
                    self.respond(
                        message,
                        PieceExecuted(
                            txn_id=message.txn_id,
                            key=key,
                            value=read_value,
                            version=read_version,
                            writer=read_writer,
                        ),
                    )
                    return
            # The buffered piece is gone — a crash wiped the pending map (or
            # the dispatch itself was lost).  Recreate it from the commit
            # message's payload; fail-free runs never take this branch.
            piece = _PendingPiece(
                message.txn_id,
                is_write=message.is_write,
                write_value=message.write_value,
            )
            pending[message.txn_id] = piece
        piece.order = message.order
        if self._fault_mode:
            if not piece.executed and message.order < self.redo.frontier(key):
                # Order fence: this key has durably executed a piece ordered
                # *after* this one, so executing it now would interleave the
                # two transactions differently than every other key did.
                # Withdraw the piece instead of wedging the key; the
                # coordinator's re-send keeps asking, making this an
                # availability cost, never a consistency one.  With the redo
                # log in place the fence is a backstop — restored pieces
                # replay before the frontier can pass them.
                self.counters["order_fence_refusals"] += 1
                pending.pop(message.txn_id, None)
                self.redo.discard(key, message.txn_id)
                self._progress.notify()
                return
            # Force-write the assigned order before the execute reply so a
            # crash after the reply can never forget the piece was ordered.
            self.redo.log_order(
                key,
                message.txn_id,
                message.order,
                is_write=piece.is_write,
                write_value=piece.write_value,
            )
        self._progress.notify()
        read_value, read_version, read_writer = yield from self._run_piece(
            key, piece, message.order
        )
        self.respond(
            message,
            PieceExecuted(
                txn_id=message.txn_id,
                key=key,
                value=read_value,
                version=read_version,
                writer=read_writer,
            ),
        )

    def _run_piece(self, key, piece: _PendingPiece, order: float):
        """Execute one ordered piece once its turn on the key comes.

        The shared execution core of the commit handler and the restart
        replay.  Returns the ``(value, version, writer)`` the piece observed
        — the pre-state for a fresh execution, the durably-logged
        observation for a piece that already executed.
        """
        pending = self._pending.setdefault(key, {})

        # Deferrable execution: wait until no pending piece on this key is
        # ordered before us.  Pieces that are still in their dispatch round
        # (order not assigned yet) are also waited for — their commit round
        # will assign an order shortly and executing ahead of them could
        # order the two transactions differently on different keys, which is
        # exactly what ROCOCO's dependency tracking prevents.
        def ready() -> bool:
            for other in pending.values():
                if other.txn_id == piece.txn_id or other.executed:
                    continue
                if other.order is None or other.order < order:
                    return False
            return True

        if not ready():
            self.counters["piece_waits"] += 1
            yield self.sim.condition(ready, self._progress, name=f"piece:{piece.txn_id}")

        yield self.cpu(self.service.commit_apply_us)
        state = self._data.setdefault(key, _RococoKey())
        if piece.executed:
            # Fault-mode re-sent commit raced the original execution (or the
            # restart replay): answer what the execution observed when the
            # redo log has it, the current state otherwise.
            if self._fault_mode:
                record = self.redo.find(key, piece.txn_id)
                if record is not None and record.reply is not None:
                    return record.reply
            return (state.value, state.version, state.writer)
        read_value = state.value
        read_version = state.version
        read_writer = state.writer
        if piece.is_write:
            state.value = piece.write_value
            state.version += 1
            state.writer = piece.txn_id
        piece.executed = True
        if self._fault_mode:
            # Same simulation step as the state mutation: the execution (and
            # the frontier advance behind the order fence) is force-written.
            self.redo.log_execution(
                key, piece.txn_id, order, (read_value, read_version, read_writer)
            )
        # pop, not del: a fault-plane PieceAbort (or a crash clearing the
        # pending map) may already have withdrawn the entry.
        pending.pop(piece.txn_id, None)
        self._progress.notify()
        self.counters["pieces_executed"] += 1
        return (read_value, read_version, read_writer)

    def _replay_piece(self, key, piece: _PendingPiece):
        """Restart replay of one logged ordered piece.

        There is no requester to answer — the coordinator's fault-mode
        re-send of the commit message collects the reply from the redo log.
        """
        yield from self._run_piece(key, piece, piece.order)

    def on_piece_abort(self, message: PieceAbort) -> None:
        """Withdraw a dispatched piece that never received an order."""
        if self._fault_mode:
            # Drop the durable record too, or a later restart would restore
            # (and re-wedge) the withdrawn piece.  Ordered records stay: the
            # transaction's outcome is decided and the piece must execute.
            record = self.redo.find(message.key, message.txn_id)
            if record is not None and record.order is None:
                self.redo.discard(message.key, message.txn_id)
        pending = self._pending.get(message.key)
        if pending is None:
            return
        piece = pending.get(message.txn_id)
        if piece is None or piece.order is not None:
            # Ordered pieces execute and clean themselves up.
            return
        del pending[message.txn_id]
        self.counters["pieces_aborted"] += 1
        self._progress.notify()

    def on_snapshot_read(self, message: SnapshotRead):
        key = message.key
        if message.wait_for_pending:
            pending = self._pending.setdefault(key, {})

            def no_pending_writers() -> bool:
                return not any(piece.is_write for piece in pending.values())

            if not no_pending_writers():
                self.counters["read_only_waits"] += 1
                yield self.sim.condition(
                    no_pending_writers, self._progress, name=f"ro-wait:{message.txn_id}"
                )
        yield self.cpu(self.service.read_local_us)
        state = self._data.setdefault(key, _RococoKey())
        self.respond(
            message,
            SnapshotReadReturn(
                txn_id=message.txn_id,
                key=key,
                value=state.value,
                version=state.version,
                writer=state.writer,
            ),
        )

    # ------------------------------------------------------------------
    # Coordinator side (Session interface)
    # ------------------------------------------------------------------
    def txn_read(self, meta: TransactionMeta, key: object):
        """Reads are collected lazily.

        ROCOCO executes a transaction's pieces during the commit round, so an
        update transaction's "read" simply registers interest in the key; the
        actual value is produced when the piece executes.  To keep the
        Session API uniform the registered read returns the key's current
        value from the primary (a dispatch-round observation); update
        transactions in the paper's workload do not branch on read values.

        Read-only transactions perform their first-round snapshot read here.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after completion of {meta}")
        if key in meta.write_set:
            return meta.write_set[key]
        reply = yield from self.reliable_request(
            self.primary(key),
            lambda: SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=meta.is_read_only),
            trace_txn=meta.txn_id,
            trace_name="read",
        )
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=meta.vc,
            writer=reply.writer,
            served_by=reply.sender,
        )
        meta.read_set[key].version_number = reply.version  # type: ignore[attr-defined]
        self.counters["client_reads"] += 1
        return reply.value

    def txn_commit(self, meta: TransactionMeta):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")
        if meta.is_read_only:
            return (yield from self._commit_read_only(meta))
        return (yield from self._commit_update(meta))

    # ------------------------------------------------------------------
    def _commit_read_only(self, meta: TransactionMeta):
        """Second-round validation of the snapshot read."""
        meta.phase = TransactionPhase.PREPARING
        if self._fault_mode:
            replies = yield from self._piece_round(
                list(meta.read_set),
                lambda key: SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=True),
                trace_txn=meta.txn_id,
                trace_name="validate",
            )
            for key in meta.read_set:
                first_version = getattr(meta.read_set[key], "version_number", 0)
                if replies[key].version != first_version:
                    self.counters["read_only_validation_failures"] += 1
                    return self._finish_abort(meta, reason="read-only-validation")
            return self._finish_commit(meta, "read_only_commits")
        events = {}
        for key, record in meta.read_set.items():
            events[key] = self.request(
                self.primary(key),
                SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=True),
            )
        for key, event in events.items():
            reply: SnapshotReadReturn = yield event
            first_version = getattr(meta.read_set[key], "version_number", 0)
            if reply.version != first_version:
                self.counters["read_only_validation_failures"] += 1
                return self._finish_abort(meta, reason="read-only-validation")
        return self._finish_commit(meta, "read_only_commits")

    def _piece_round(self, keys, make_message, trace_txn=None, trace_name="round"):
        """One per-key piece round routed to each key's primary.

        The shared :meth:`ProtocolRuntime.request_round` provides the wave
        (and, in fault mode, the idempotent re-send) semantics; the dispatch
        and commit handlers are idempotent so a primary that crashed and
        restarted simply answers the re-send.  Returns ``{key: reply}``.
        """
        replies = yield from self.request_round(
            list(keys),
            self.primary,
            make_message,
            trace_txn=trace_txn,
            trace_name=trace_name,
        )
        return replies

    def _commit_update(self, meta: TransactionMeta):
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        # Every accessed key becomes one piece routed to the key's primary.
        pieces: Dict[object, bool] = {}
        for key in meta.read_set:
            pieces[key] = False
        for key in meta.write_set:
            pieces[key] = True

        # Round 1: dispatch.
        yield from self._piece_round(
            pieces,
            lambda key: PieceDispatch(
                txn_id=txn_id,
                key=key,
                is_write=pieces[key],
                write_value=meta.write_set.get(key),
            ),
            trace_txn=txn_id,
            trace_name="dispatch",
        )

        # Order position: the dispatch-round completion instant is unique per
        # coordinator (simulated time plus a per-transaction tie-breaker) and
        # consistent across every key of the transaction.
        order = self.sim.now + (txn_id.seq % 997) * 1e-6
        meta.internal_commit_time = self.sim.now
        # Pieces execute in ``order`` on every involved server, so the order
        # value doubles as the per-key version-order hint for the checker.
        meta.version_hints = {key: order for key in meta.write_set}

        # Round 2: commit / execute.
        executed_replies = yield from self._piece_round(
            pieces,
            lambda key: PieceCommit(
                txn_id=txn_id,
                key=key,
                order=order,
                is_write=pieces[key],
                write_value=meta.write_set.get(key),
            ),
            trace_txn=txn_id,
            trace_name="commit",
        )
        for executed in executed_replies.values():
            if executed.key in meta.read_set:
                record = meta.read_set[executed.key]
                record.value = executed.value
                record.writer = executed.writer
        self.counters["two_round_commits"] += 1
        return self._finish_commit(meta, "update_commits")

    def _complete_crashed_commit(self, txn_id: TransactionId):
        """Finish the commit round of a decided transaction the crash cut short.

        The order was assigned (force-written) before the crash, so the
        transaction committed on every key or none — re-running the commit
        round with the same order is idempotent at every server (the redo
        log answers duplicates) and lands the writes on any key the original
        round never reached.  Finishing into the history makes the recovered
        writes legitimately committed for the consistency checkers: crash
        recovery is all-or-nothing, never a torn partial commit.
        """
        meta = self.coordinated[txn_id]
        order = self._crash_completions.get(txn_id)
        if order is None:
            return
        pieces: Dict[object, bool] = {}
        for key in meta.read_set:
            pieces[key] = False
        for key in meta.write_set:
            pieces[key] = True
        executed_replies = yield from self._piece_round(
            pieces,
            lambda key: PieceCommit(
                txn_id=txn_id,
                key=key,
                order=order,
                is_write=pieces[key],
                write_value=meta.write_set.get(key),
            ),
            trace_txn=txn_id,
            trace_name="redo-commit",
        )
        # Fold the execution observations into the recorded reads, exactly as
        # the fail-free commit round does: the durable replies carry what the
        # pieces observed *at the assigned order* — recording the stale
        # EXECUTING-phase snapshot instead would fabricate anti-dependencies
        # against writers ordered before us.
        for executed in executed_replies.values():
            if executed.key in meta.read_set:
                record = meta.read_set[executed.key]
                record.value = executed.value
                record.writer = executed.writer
        if self._crash_completions.pop(txn_id, None) is None:
            return  # a racing completion (re-restart) already finished it
        self.counters["crash_completed_commits"] += 1
        self._finish_commit(meta, "update_commits")


class RococoCluster(ProtocolCluster):
    """Cluster facade for the ROCOCO baseline."""

    node_class = RococoNode
    protocol_name = "rococo"

    def check_contract(self) -> list:
        """ROCOCO's contract under faults: serializability (the guarantee the
        integration tests pin for this baseline) plus committed-writer reads —
        no client may observe a torn or uncommitted write."""
        return [
            check_serializability(self.history),
            check_committed_reads(self.history),
        ]


register("rococo", RococoCluster)
