"""Shared infrastructure of the baseline protocols.

Everything that used to live here — the coordinator-side plumbing every
protocol node must provide so that :class:`repro.core.session.Session` can
drive it, and the cluster facade — moved into the unified protocol layer
when SSS and the baselines were ported onto one runtime:

* :class:`BaseProtocolNode` is :class:`repro.protocols.runtime.ProtocolRuntime`;
* :class:`BaselineCluster` is :class:`repro.protocols.cluster.ProtocolCluster`.

The aliases are kept so existing imports (tests, notebooks, downstream
experiments) continue to work unchanged.
"""

from __future__ import annotations

from repro.protocols.cluster import ProtocolCluster
from repro.protocols.runtime import ProtocolRuntime

BaseProtocolNode = ProtocolRuntime
BaselineCluster = ProtocolCluster

__all__ = ["BaseProtocolNode", "BaselineCluster"]
