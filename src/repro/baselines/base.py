"""Shared infrastructure of the baseline protocols.

:class:`BaseProtocolNode` defines the coordinator-side interface every
protocol node must provide so that :class:`repro.core.session.Session` can
drive it (``begin_transaction`` / ``txn_read`` / ``txn_write`` /
``txn_commit`` / ``txn_abort``), plus the storage bits the baselines share.

:class:`BaselineCluster` mirrors the public facade of
:class:`repro.core.cluster.SSSCluster` for an arbitrary node class, so the
benchmark harness can instantiate any protocol with one code path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError, TransactionStateError
from repro.common.ids import NodeId, TransactionId, TxnIdGenerator
from repro.consistency.checkers import CheckResult, check_external_consistency
from repro.consistency.history import HistoryRecorder
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.core.session import Session
from repro.network.node import NetworkedNode
from repro.network.transport import Network
from repro.replication.placement import KeyPlacement
from repro.sim.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover
    pass


class BaseProtocolNode(NetworkedNode):
    """Common coordinator-side plumbing for the baseline protocol nodes."""

    def __init__(
        self,
        sim: "Simulation",
        network: "Network",
        node_id: NodeId,
        placement: KeyPlacement,
        config: ClusterConfig,
        history: Optional[HistoryRecorder] = None,
    ):
        super().__init__(sim, network, node_id, service=config.service)
        self.placement = placement
        self.config = config
        self.history = history
        self._txn_ids = TxnIdGenerator(node_id)
        self.coordinated: Dict[TransactionId, TransactionMeta] = {}
        self.counters = defaultdict(int)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def replicas(self, key: object) -> Tuple[NodeId, ...]:
        return self.placement.replicas(key)

    def primary(self, key: object) -> NodeId:
        return self.placement.primary(key)

    def is_replica_of(self, key: object) -> bool:
        return self.placement.is_replica(self.node_id, key)

    # ------------------------------------------------------------------
    # Session interface
    # ------------------------------------------------------------------
    def begin_transaction(self, read_only: bool) -> TransactionMeta:
        meta = TransactionMeta(
            txn_id=self._txn_ids.next_id(),
            coordinator=self.node_id,
            is_update=not read_only,
            n_nodes=self.config.n_nodes,
        )
        meta.begin_time = self.sim.now
        self.coordinated[meta.txn_id] = meta
        self.counters["begun"] += 1
        return meta

    def txn_write(self, meta: TransactionMeta, key: object, value: object) -> None:
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"write after completion of {meta}")
        if meta.is_read_only:
            raise TransactionStateError(
                f"{meta.txn_id} was declared read-only but issued a write"
            )
        meta.record_write(key, value)
        self.counters["client_writes"] += 1

    def txn_abort(self, meta: TransactionMeta) -> None:
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"abort after completion of {meta}")
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = "client-abort"
        meta.abort_time = self.sim.now
        self.counters["client_aborts"] += 1

    def txn_read(self, meta: TransactionMeta, key: object):  # pragma: no cover
        raise NotImplementedError

    def txn_commit(self, meta: TransactionMeta):  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Outcome helpers shared by the protocols
    # ------------------------------------------------------------------
    def _finish_commit(self, meta: TransactionMeta, counter: str) -> bool:
        meta.phase = TransactionPhase.EXTERNALLY_COMMITTED
        meta.external_commit_time = self.sim.now
        if meta.commit_vc is None:
            meta.commit_vc = meta.vc
        self.counters[counter] += 1
        if self.history is not None:
            self.history.record_commit(meta)
        return True

    def _finish_abort(self, meta: TransactionMeta, reason: str) -> bool:
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = reason
        meta.abort_time = self.sim.now
        self.counters["aborts"] += 1
        if self.history is not None:
            self.history.record_abort(meta)
        return False

    def preload(self, keys, initial_value=0) -> None:  # pragma: no cover
        """Install the initial key space; overridden by each protocol."""
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        stats = dict(self.counters)
        stats["messages_handled"] = self.messages_handled
        return stats


class BaselineCluster:
    """Facade assembling a cluster of one baseline protocol.

    Subclasses set :attr:`node_class` and :attr:`protocol_name`; everything
    else (sessions, spawning client processes, running the simulation,
    history recording) is shared and mirrors
    :class:`repro.core.cluster.SSSCluster`.
    """

    node_class = None
    protocol_name = "baseline"

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        keys: Optional[Sequence[object]] = None,
        record_history: bool = True,
        initial_value=0,
        **node_kwargs,
    ):
        if self.node_class is None:  # pragma: no cover - abstract use
            raise ConfigurationError("BaselineCluster must be subclassed")
        self.config = config or ClusterConfig()
        self.config.validate()
        self.keys: List[object] = (
            list(keys)
            if keys is not None
            else [f"key-{index}" for index in range(self.config.n_keys)]
        )
        self.sim = Simulation(seed=self.config.seed)
        self.network = Network(self.sim, config=self.config.network)
        self.placement = KeyPlacement(
            n_nodes=self.config.n_nodes,
            replication_degree=self.config.replication_degree,
            keys=self.keys,
        )
        self.history: Optional[HistoryRecorder] = (
            HistoryRecorder() if record_history else None
        )
        self.nodes = [
            self.node_class(
                self.sim,
                self.network,
                node_id,
                placement=self.placement,
                config=self.config,
                history=self.history,
                **node_kwargs,
            )
            for node_id in range(self.config.n_nodes)
        ]
        for node in self.nodes:
            node.preload(self.keys, initial_value=initial_value)
        self._session_counter: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def session(self, node_id: int = 0) -> Session:
        if not 0 <= node_id < self.config.n_nodes:
            raise ConfigurationError(
                f"node_id {node_id} out of range (cluster has "
                f"{self.config.n_nodes} nodes)"
            )
        index = self._session_counter.get(node_id, 0)
        self._session_counter[node_id] = index + 1
        return Session(self.nodes[node_id], client_index=index)

    def spawn(self, generator, name: str = ""):
        return self.sim.process(generator, name=name or "client")

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now

    def node(self, node_id: int):
        return self.nodes[node_id]

    def check_consistency(self) -> CheckResult:
        if self.history is None:
            raise ConfigurationError(
                "history recording is disabled for this cluster"
            )
        return check_external_consistency(self.history)

    def total_counters(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for node in self.nodes:
            for name, value in node.stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} nodes={self.config.n_nodes} "
            f"keys={len(self.keys)} rf={self.config.replication_degree}>"
        )
