"""The optimized VectorClock must behave exactly like a reference model.

The production :class:`~repro.clocks.vector_clock.VectorClock` carries several
fast paths (C-level ``map`` merges with dominance shortcuts, trusted-wrap
constructors, cached hashes, early-exit comparisons).  This file pins its
observable behaviour to a deliberately naive reference implementation over
randomized operation sequences, so any future fast-path bug shows up as a
divergence rather than a subtle protocol anomaly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock


class ReferenceClock:
    """Straightforward list-based model of the vector clock semantics."""

    def __init__(self, entries):
        self.entries = [int(entry) for entry in entries]

    def merge(self, other):
        return ReferenceClock([max(a, b) for a, b in zip(self.entries, other.entries)])

    def increment(self, index, amount=1):
        entries = list(self.entries)
        entries[index] += amount
        return ReferenceClock(entries)

    def with_entry(self, index, value):
        entries = list(self.entries)
        entries[index] = int(value)
        return ReferenceClock(entries)

    def with_entries(self, indices, value):
        entries = list(self.entries)
        for index in indices:
            entries[index] = int(value)
        return ReferenceClock(entries)

    def le(self, other):
        return all(a <= b for a, b in zip(self.entries, other.entries))

    def ge(self, other):
        return all(a >= b for a, b in zip(self.entries, other.entries))


SIZE = st.shared(st.integers(min_value=1, max_value=8), key="vc-size")


def clocks(size):
    return st.lists(st.integers(min_value=0, max_value=40), min_size=size, max_size=size)


@st.composite
def clock_pairs(draw):
    size = draw(SIZE)
    return draw(clocks(size)), draw(clocks(size))


@st.composite
def operation_sequences(draw):
    size = draw(st.integers(min_value=1, max_value=6))
    start = draw(clocks(size))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("merge"), st.lists(
                    st.integers(min_value=0, max_value=40),
                    min_size=size, max_size=size)),
                st.tuples(st.just("increment"),
                          st.integers(min_value=0, max_value=size - 1)),
                st.tuples(st.just("with_entry"),
                          st.tuples(st.integers(min_value=0, max_value=size - 1),
                                    st.integers(min_value=0, max_value=40))),
                st.tuples(st.just("with_entries"),
                          st.tuples(
                              st.lists(st.integers(min_value=0, max_value=size - 1),
                                       min_size=1, max_size=size, unique=True),
                              st.integers(min_value=0, max_value=40))),
            ),
            max_size=12,
        )
    )
    return start, ops


class TestAgainstReference:
    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(clock_pairs())
    def test_binary_operations_match(self, pair):
        left_entries, right_entries = pair
        fast_left, fast_right = VectorClock(left_entries), VectorClock(right_entries)
        ref_left = ReferenceClock(left_entries)
        ref_right = ReferenceClock(right_entries)

        merged = fast_left.merge(fast_right)
        assert list(merged.entries) == ref_left.merge(ref_right).entries
        assert (fast_left <= fast_right) == ref_left.le(ref_right)
        assert (fast_left >= fast_right) == ref_left.ge(ref_right)
        assert (fast_left < fast_right) == (
            ref_left.le(ref_right) and left_entries != right_entries
        )
        assert (fast_left > fast_right) == (
            ref_left.ge(ref_right) and left_entries != right_entries
        )
        assert fast_left.concurrent_with(fast_right) == (
            not ref_left.le(ref_right) and not ref_right.le(ref_left)
        )
        assert (fast_left == fast_right) == (left_entries == right_entries)
        if left_entries == right_entries:
            assert hash(fast_left) == hash(fast_right)

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(operation_sequences())
    def test_operation_sequences_match(self, sequence):
        start, ops = sequence
        fast = VectorClock(start)
        reference = ReferenceClock(start)
        for name, argument in ops:
            if name == "merge":
                fast = fast.merge(VectorClock(argument))
                reference = reference.merge(ReferenceClock(argument))
            elif name == "increment":
                fast = fast.increment(argument)
                reference = reference.increment(argument)
            elif name == "with_entry":
                index, value = argument
                fast = fast.with_entry(index, value)
                reference = reference.with_entry(index, value)
            else:
                indices, value = argument
                fast = fast.with_entries(indices, value)
                reference = reference.with_entries(indices, value)
            assert list(fast.entries) == reference.entries
            # The cached hash must always agree with a fresh construction.
            assert hash(fast) == hash(VectorClock(reference.entries))

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(st.lists(clock_pairs(), min_size=1, max_size=10))
    def test_codec_round_trips_match_reference(self, pairs):
        size = len(pairs[0][0])
        encoder, decoder = VCCodec(size), VCCodec(size)
        for left_entries, _right in pairs:
            clock = VectorClock(left_entries)
            encoding = encoder.encode("peer", clock)
            decoded = decoder.decode("peer", encoding)
            assert list(decoded.entries) == [int(v) for v in left_entries]
