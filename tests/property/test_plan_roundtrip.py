"""Property: plan serialization is the inverse of parsing.

The scenario searcher stores plans as canonical DSL strings
(``fault.to_spec()`` / ``phase.to_spec()``) and rebuilds them through the
real parsers, so ``parse(plan.specs()) == plan`` must hold for *every*
constructible plan — not just the handful in the unit tests.  Hypothesis
builds random structurally-valid plans and checks the round-trip both ways:

* object -> spec -> object is the identity, and
* spec -> object -> spec is stable (canonical form is a fixed point).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.config import (
    CrashFault,
    FaultPlan,
    PartitionFault,
    SlowLinkFault,
)
from repro.traffic.plan import (
    OVERRIDE_FIELDS,
    BurstArrivals,
    ConstArrivals,
    PiecewiseArrivals,
    PoissonArrivals,
    RampArrivals,
    TrafficPhase,
    TrafficPlan,
)

N_NODES = 6

# --------------------------------------------------------------------------
# Strategies: structurally valid plan objects.  Times/rates use plain
# floats in sane ranges (including awkward non-integral values) — the
# serializer must round-trip them exactly via repr().
# --------------------------------------------------------------------------
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
durations = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
rates = st.floats(min_value=1.0, max_value=1e5, allow_nan=False, allow_infinity=False)
nodes = st.integers(min_value=0, max_value=N_NODES - 1)

crash_faults = st.builds(
    CrashFault,
    node=nodes,
    at_us=times,
    duration_us=st.one_of(st.none(), durations),
)


@st.composite
def partition_faults(draw):
    node_ids = list(range(N_NODES))
    cut = draw(st.integers(min_value=1, max_value=N_NODES - 1))
    shuffled = draw(st.permutations(node_ids))
    groups = (tuple(sorted(shuffled[:cut])), tuple(sorted(shuffled[cut:])))
    return PartitionFault(
        groups=groups,
        at_us=draw(times),
        duration_us=draw(durations),
        mode=draw(st.sampled_from(["buffer", "drop"])),
    )


@st.composite
def slowlink_faults(draw):
    src = draw(nodes)
    dst = draw(nodes.filter(lambda node: node != src))
    return SlowLinkFault(
        src=src,
        dst=dst,
        at_us=draw(times),
        duration_us=draw(durations),
        factor=draw(st.floats(min_value=1.0, max_value=64.0, allow_nan=False)),
        extra_us=draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        bidirectional=draw(st.booleans()),
    )


@st.composite
def fault_plans(draw):
    # The transport supports at most one active partition, so plans carry
    # any number of crash/slowlink faults but at most one partition.
    faults = draw(st.lists(st.one_of(crash_faults, slowlink_faults()), max_size=4))
    if draw(st.booleans()):
        position = draw(st.integers(min_value=0, max_value=len(faults)))
        faults.insert(position, draw(partition_faults()))
    return FaultPlan(faults=tuple(faults))


@settings(max_examples=200)
@given(plan=fault_plans())
def test_fault_plan_round_trips(plan):
    plan.validate(N_NODES)
    specs = plan.specs()
    reparsed = FaultPlan.parse(specs)
    assert reparsed == plan
    # canonical form is a fixed point
    assert reparsed.specs() == specs


# --------------------------------------------------------------------------
# Traffic plans
# --------------------------------------------------------------------------
@st.composite
def burst_arrivals(draw):
    base = draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    peak = draw(st.floats(min_value=max(base, 1.0), max_value=1e5, allow_nan=False))
    every = draw(st.floats(min_value=2.0, max_value=1e5, allow_nan=False))
    width = draw(st.floats(min_value=0.5, max_value=every * 0.9, allow_nan=False))
    return BurstArrivals(base_tps=base, peak_tps=peak, every_us=every, for_us=width)


@st.composite
def piecewise_arrivals(draw):
    pieces = draw(
        st.lists(
            st.tuples(durations, rates, rates),
            min_size=1,
            max_size=4,
        )
    )
    return PiecewiseArrivals(pieces=tuple(pieces), repeat=draw(st.booleans()))


arrivals = st.one_of(
    st.builds(ConstArrivals, rate_tps=rates),
    st.builds(PoissonArrivals, rate_tps=rates),
    burst_arrivals(),
    st.builds(RampArrivals, start_tps=rates, end_tps=rates, over_us=durations),
    piecewise_arrivals(),
)

override_items = st.fixed_dictionaries(
    {},
    optional={
        "read_only": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "locality": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "dist": st.sampled_from(["uniform", "zipfian"]),
        "zipf": st.floats(min_value=0.01, max_value=0.999, allow_nan=False),
        "ro_keys": st.integers(min_value=1, max_value=6),
        "update_keys": st.integers(min_value=1, max_value=6),
    },
)


@st.composite
def traffic_phases(draw, final, until_after):
    """One phase ending strictly after ``until_after`` (or open-ended if final)."""
    if final and draw(st.booleans()):
        until = None
    else:
        until = until_after + draw(durations)
    drawn = draw(override_items)
    # The parser normalizes overrides to OVERRIDE_FIELDS order; build them
    # that way so object -> spec -> object compares equal.
    overrides = tuple((key, drawn[key]) for key in OVERRIDE_FIELDS if key in drawn)
    return TrafficPhase(
        arrival=draw(arrivals),
        until_us=until,
        sampling=draw(st.sampled_from([None, "poisson", "deterministic"])),
        overrides=overrides,
    )


@st.composite
def traffic_plans(draw):
    size = draw(st.integers(min_value=0, max_value=4))
    phases = []
    until_after = 0.0
    for index in range(size):
        phase = draw(traffic_phases(final=(index == size - 1), until_after=until_after))
        if phase.until_us is not None:
            until_after = phase.until_us
        phases.append(phase)
    return TrafficPlan(phases=tuple(phases))


@settings(max_examples=200)
@given(plan=traffic_plans())
def test_traffic_plan_round_trips(plan):
    plan.validate()
    specs = plan.specs()
    reparsed = TrafficPlan.parse(specs)
    assert reparsed == plan
    assert reparsed.specs() == specs
