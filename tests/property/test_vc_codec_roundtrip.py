"""VCCodec round-trips real protocol traffic losslessly.

The transport accounts every message-borne vector clock through the delta
codec (``VCCodec.clock_bytes``), but never materializes the encodings — so
these tests capture the exact clock streams a real SSS run pushes through
the codec (every clock-carrying message type: ReadRequest, ReadReturn's
max/version clocks, Prepare's transaction and read-set clocks, Vote, Decide)
and verify that

* ``encode``/``decode`` over each captured per-peer stream reconstructs
  every clock exactly (losslessness over real traffic, not just random
  sequences), and
* the inline size computed by ``clock_bytes`` equals the size of the
  encoding ``encode`` would have produced, for every clock of every stream
  (the two paths must never drift apart).

A hypothesis test extends the losslessness to adversarial random streams
with width changes interleaved.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

import repro.network.transport as transport_module
from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.runner import run_experiment


class CapturingCodec(VCCodec):
    """VCCodec that records every (peer, clock) handed to clock_bytes."""

    __slots__ = ("captured",)

    instances = []

    def __init__(self, size=None):
        super().__init__(size)
        self.captured = []
        CapturingCodec.instances.append(self)

    def clock_bytes(self, peer, clock):
        self.captured.append((peer, clock))
        return super().clock_bytes(peer, clock)


@pytest.fixture
def captured_traffic(monkeypatch):
    """Clock streams captured from a small but complete SSS run."""
    CapturingCodec.instances = []
    monkeypatch.setattr(transport_module, "VCCodec", CapturingCodec)
    config = ClusterConfig(n_nodes=4, n_keys=40, replication_degree=2, clients_per_node=2, seed=11)
    workload = WorkloadConfig(read_only_fraction=0.5, read_only_txn_keys=2)
    run_experiment("sss", config, workload, duration_us=8_000.0, warmup_us=0.0)
    streams = defaultdict(list)
    for codec_index, codec in enumerate(CapturingCodec.instances):
        for peer, clock in codec.captured:
            streams[(codec_index, peer)].append(clock)
    assert streams, "the run produced no clock-bearing traffic"
    return streams


def test_captured_traffic_round_trips_losslessly(captured_traffic):
    total = 0
    for (_codec_index, peer), clocks in captured_traffic.items():
        encoder = VCCodec()
        decoder = VCCodec()
        for clock in clocks:
            encoding = encoder.encode(peer, clock)
            decoded = decoder.decode(peer, encoding)
            assert decoded == clock
            assert decoded.entries == clock.entries
            total += 1
    # The capture must exercise delta traffic, not just initial dense
    # shipments: real runs revisit channels constantly.
    assert total > 1_000


def test_clock_bytes_equals_encode_size_on_captured_traffic(captured_traffic):
    for (_codec_index, peer), clocks in captured_traffic.items():
        accounting = VCCodec()
        reference = VCCodec()
        for clock in clocks:
            nbytes = accounting.clock_bytes(peer, clock)
            encoding = reference.encode(peer, clock)
            assert nbytes == VCCodec.encoded_size_bytes(encoding)


def test_captured_traffic_covers_every_stream_kind(captured_traffic):
    """All six reference streams (see repro.core.messages) carry traffic."""
    seen_streams = {peer % 8 for (_codec, peer) in captured_traffic}
    assert {0, 1, 2, 3, 4, 5} <= seen_streams


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=9),
        min_size=1,
        max_size=30,
    )
)
def test_random_streams_round_trip(entry_lists):
    encoder = VCCodec()
    decoder = VCCodec()
    for entries in entry_lists:
        clock = VectorClock(entries)
        decoded = decoder.decode("p", encoder.encode("p", clock))
        assert decoded == clock
