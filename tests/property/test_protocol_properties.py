"""Property-based tests of end-to-end protocol correctness.

Random small workloads (random key counts, client placements, read/write
mixes) are executed on SSS and the 2PC-baseline; every produced history must
pass the external-consistency, serializability and snapshot-read checks, and
the cluster must reach quiescence with no leaked snapshot-queue entries,
locks or commit-queue entries.  Walter histories must never contain aborted
read-only transactions.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings, strategies as st


def stress_scale() -> int:
    """Example-budget multiplier for the nightly stress run.

    Read from the environment directly (not imported from conftest) so the
    suite also collects under the bare ``pytest`` entrypoint, where the
    repo root is not on ``sys.path``.
    """
    return max(1, int(os.environ.get("REPRO_STRESS_SCALE", "1") or "1"))

from repro.baselines.walter import WalterCluster
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.consistency.checkers import (
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.core.cluster import SSSCluster
from repro.harness.cluster import build_cluster
from repro.workload.profiles import WorkloadGenerator
from repro.workload.ycsb import ClientStats, closed_loop_client

workload_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=1, max_value=10_000),
        "n_nodes": st.integers(min_value=2, max_value=4),
        "n_keys": st.integers(min_value=4, max_value=40),
        "replication_degree": st.integers(min_value=1, max_value=2),
        "clients_per_node": st.integers(min_value=1, max_value=2),
        "read_only_fraction": st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
    }
)


def run_random_workload(protocol: str, params: dict, duration_us: float = 12_000.0):
    """Run a short random closed-loop workload and return the cluster."""
    config = ClusterConfig(
        n_nodes=params["n_nodes"],
        n_keys=params["n_keys"],
        replication_degree=min(params["replication_degree"], params["n_nodes"]),
        clients_per_node=params["clients_per_node"],
        seed=params["seed"],
    )
    workload = WorkloadConfig(read_only_fraction=params["read_only_fraction"])
    cluster = build_cluster(protocol, config=config, record_history=True)
    for node_id in range(config.n_nodes):
        for client_index in range(config.clients_per_node):
            session = cluster.session(node_id)
            generator = WorkloadGenerator(
                workload,
                cluster.keys,
                cluster.sim.rng.stream(f"prop.{node_id}.{client_index}"),
            )
            cluster.spawn(
                closed_loop_client(
                    session,
                    generator,
                    ClientStats(node_id, client_index),
                    deadline_us=duration_us,
                )
            )
    # Run to quiescence so every in-flight transaction finishes.
    cluster.run()
    return cluster


class TestSSSRandomWorkloads:
    @settings(
        max_examples=12 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_histories_are_externally_consistent(self, params):
        cluster = run_random_workload("sss", params)
        history = cluster.history
        assert check_external_consistency(history).ok
        assert check_serializability(history).ok
        assert check_snapshot_reads(history).ok

    @settings(
        max_examples=8 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_no_leaked_protocol_state_at_quiescence(self, params):
        cluster = run_random_workload("sss", params)
        assert isinstance(cluster, SSSCluster)
        for node in cluster.nodes:
            assert node.queued_writer_count() == 0, "pre-commit entries leaked"
            assert len(node.commit_queue) == 0, "commit queue not drained"
            assert node.locks.locked_keys() == [], "locks leaked"
            assert node.locks.waiting_count() == 0
            assert not node._ack_waits, "external-ack waits leaked"

    @settings(
        max_examples=8 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_read_only_transactions_never_abort(self, params):
        cluster = run_random_workload("sss", params)
        read_only_aborts = [
            txn for txn in cluster.history.aborted if not txn.is_update
        ]
        assert read_only_aborts == []


class TestBaselineRandomWorkloads:
    @settings(
        max_examples=8 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_twopc_histories_are_externally_consistent(self, params):
        cluster = run_random_workload("2pc", params)
        assert check_external_consistency(cluster.history).ok
        assert check_serializability(cluster.history).ok

    @settings(
        max_examples=6 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_walter_read_only_transactions_never_abort(self, params):
        cluster = run_random_workload("walter", params)
        assert isinstance(cluster, WalterCluster)
        assert all(txn.is_update for txn in cluster.history.aborted)

    @settings(
        max_examples=6 * stress_scale(),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workload_params)
    def test_rococo_update_transactions_never_abort(self, params):
        params = dict(params, replication_degree=1)
        cluster = run_random_workload("rococo", params)
        assert all(not txn.is_update for txn in cluster.history.aborted)
        assert check_serializability(cluster.history).ok
