"""Property-based tests (hypothesis) for the substrate data structures."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId
from repro.replication.placement import KeyPlacement
from repro.storage.snapshot_queue import READ_KIND, WRITE_KIND, SnapshotQueue, SQueueEntry
from repro.storage.version import Version, VersionChain

# Reusable strategies -------------------------------------------------------
entries = st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=8)


def clock_pairs(size: int = 5):
    entry = st.integers(min_value=0, max_value=100)
    clock = st.lists(entry, min_size=size, max_size=size).map(VectorClock)
    return st.tuples(clock, clock)


class TestVectorClockProperties:
    @given(entries)
    def test_merge_idempotent(self, values):
        clock = VectorClock(values)
        assert clock.merge(clock) == clock

    @given(clock_pairs())
    def test_merge_commutative_and_upper_bound(self, pair):
        a, b = pair
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert a <= merged and b <= merged

    @given(clock_pairs(), st.integers(min_value=0, max_value=4))
    def test_increment_strictly_greater(self, pair, index):
        clock, _ = pair
        assert clock < clock.increment(index)

    @given(clock_pairs())
    def test_partial_order_antisymmetry(self, pair):
        a, b = pair
        if a <= b and b <= a:
            assert a == b

    @given(clock_pairs())
    def test_exactly_one_relation_holds(self, pair):
        a, b = pair
        relations = [a == b, a < b, b < a, a.concurrent_with(b)]
        assert sum(bool(r) for r in relations) == 1

    @given(st.lists(st.lists(st.integers(0, 50), min_size=3, max_size=3), min_size=1, max_size=10))
    def test_merge_associative_over_sequences(self, clock_lists):
        clocks = [VectorClock(values) for values in clock_lists]
        left = clocks[0]
        for clock in clocks[1:]:
            left = left.merge(clock)
        right = clocks[-1]
        for clock in reversed(clocks[:-1]):
            right = clock.merge(right)
        assert left == right


class TestCodecProperties:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=10_000), min_size=6, max_size=6),
            min_size=1,
            max_size=30,
        )
    )
    def test_encode_decode_roundtrip_sequence(self, clock_values):
        sender = VCCodec(size=6)
        receiver = VCCodec(size=6)
        for values in clock_values:
            clock = VectorClock(values)
            encoding = sender.encode("peer", clock)
            assert receiver.decode("peer", encoding) == clock


class TestPlacementProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=40, unique=True),
    )
    def test_replica_sets_valid(self, n_nodes, degree, keys):
        degree = min(degree, n_nodes)
        placement = KeyPlacement(n_nodes=n_nodes, replication_degree=degree, keys=keys)
        for key in keys:
            replicas = placement.replicas(key)
            assert len(replicas) == degree
            assert len(set(replicas)) == degree
            assert all(0 <= node < n_nodes for node in replicas)
            assert placement.primary(key) == replicas[0]

    @given(st.lists(st.integers(), min_size=1, max_size=50, unique=True))
    def test_every_key_is_local_somewhere(self, keys):
        placement = KeyPlacement(n_nodes=5, replication_degree=2, keys=keys)
        covered = set()
        for node in range(5):
            covered.update(placement.local_keys(node))
        assert covered == set(keys)


class TestSnapshotQueueProperties:
    ops = st.lists(
        st.tuples(
            st.sampled_from(["insert_r", "insert_w", "remove"]),
            st.integers(min_value=0, max_value=15),   # txn seq
            st.integers(min_value=0, max_value=100),  # snapshot
        ),
        max_size=60,
    )

    @given(ops)
    def test_queue_invariants_under_random_operations(self, operations):
        queue = SnapshotQueue("k")
        alive = set()
        for op, seq, snapshot in operations:
            txn = TransactionId(0, seq)
            if op == "insert_r":
                queue.insert(SQueueEntry(txn, snapshot, READ_KIND))
                alive.add(txn)
            elif op == "insert_w":
                queue.insert(SQueueEntry(txn, snapshot, WRITE_KIND))
                alive.add(txn)
            else:
                queue.remove(txn)
                alive.discard(txn)
            # Invariant 1: sub-queues stay sorted by insertion snapshot.
            reader_snapshots = [e.insertion_snapshot for e in queue.readers()]
            writer_snapshots = [e.insertion_snapshot for e in queue.writers()]
            assert reader_snapshots == sorted(reader_snapshots)
            assert writer_snapshots == sorted(writer_snapshots)
            # Invariant 2: at most one reader and one writer entry per txn.
            reader_ids = [e.txn_id for e in queue.readers()]
            writer_ids = [e.txn_id for e in queue.writers()]
            assert len(reader_ids) == len(set(reader_ids))
            assert len(writer_ids) == len(set(writer_ids))
            # Invariant 3: membership matches the alive set we maintain.
            for txn_id in alive:
                pass  # txn may or may not be present (removed txns never are)
        for op, seq, _snapshot in operations:
            if op == "remove":
                assert TransactionId(0, seq) not in queue or TransactionId(0, seq) in alive

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=50),
    )
    def test_has_reader_below_matches_definition(self, snapshots, bound):
        queue = SnapshotQueue("k")
        for index, snapshot in enumerate(snapshots):
            queue.insert(SQueueEntry(TransactionId(0, index), snapshot, READ_KIND))
        assert queue.has_reader_below(bound) == any(s < bound for s in snapshots)


class TestVersionChainProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
    def test_walk_is_reverse_of_install_order(self, values):
        chain = VersionChain(key="k")
        for index, value in enumerate(values):
            chain.install(Version(value, VectorClock([index])))
        walked = [version.value for version in chain.newest_to_oldest()]
        assert walked == list(reversed(values))
        assert chain.latest.value == values[-1]
