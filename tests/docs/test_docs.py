"""Docs are executable collateral, not prose that rots.

Three contracts over ``README.md`` and ``docs/``:

* every relative markdown link resolves to a real file, and every
  ``#anchor`` (same-file or cross-file) matches a real heading;
* every inline-code reference to a repository path (``src/...``,
  ``tests/...``, ``benchmarks/...``, ``docs/...``, ``examples/...``)
  points at something that exists — renaming a module without updating
  the docs fails here;
* every fenced DSL example in ``docs/SCENARIOS.md`` (the ``fault-dsl`` /
  ``traffic-dsl`` fences, one spec per line) parses through the real
  plan parsers, and the ``python`` fences there execute end to end.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.common.config import FaultPlan
from repro.traffic.plan import TrafficPlan

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").rglob("*.md")])

_FENCE_RE = re.compile(r"^```(\S*)\s*$")
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_PATH_REF_RE = re.compile(r"^(?:src|tests|benchmarks|docs|examples)/[\w./-]*$")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")

#: Node-count budget the fault examples are validated against (the docs
#: never name a node id above 3).
VALIDATION_NODES = 8


def _split_fences(text: str):
    """Yield ``(kind, content)`` pairs: prose chunks and tagged fences."""
    prose: list[str] = []
    fence_tag = None
    fence_lines: list[str] = []
    for line in text.splitlines():
        match = _FENCE_RE.match(line.strip())
        if match and fence_tag is None:
            fence_tag = match.group(1) or "untagged"
            yield "prose", "\n".join(prose)
            prose = []
        elif match and fence_tag is not None:
            yield fence_tag, "\n".join(fence_lines)
            fence_tag, fence_lines = None, []
        elif fence_tag is not None:
            fence_lines.append(line)
        else:
            prose.append(line)
    yield "prose", "\n".join(prose)


def _prose(path: Path) -> str:
    return "\n".join(
        content for kind, content in _split_fences(path.read_text()) if kind == "prose"
    )


def _fences(path: Path, tag: str) -> list[str]:
    return [content for kind, content in _split_fences(path.read_text()) if kind == tag]


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: drop code ticks, punctuation; spaces -> hyphens."""
    text = heading.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors = set()
    for kind, content in _split_fences(path.read_text()):
        if kind != "prose":
            continue
        for line in content.splitlines():
            match = _HEADING_RE.match(line)
            if match:
                anchors.add(_github_slug(match.group(2)))
    return anchors


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_links_and_anchors_resolve(doc):
    problems = []
    for target in _LINK_RE.findall(_prose(doc)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.exists():
            problems.append(f"{target}: {path_part} does not exist")
            continue
        if anchor and anchor not in _anchors(resolved):
            problems.append(f"{target}: no heading for #{anchor} in {path_part or doc.name}")
    assert not problems, f"{doc.name}: broken links: {problems}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_inline_path_references_exist(doc):
    missing = []
    for span in _CODE_SPAN_RE.findall(_prose(doc)):
        if not _PATH_REF_RE.match(span):
            continue
        if "*" in span or "<" in span:
            continue
        if not (REPO_ROOT / span).exists():
            missing.append(span)
    assert not missing, f"{doc.name}: references to nonexistent paths: {missing}"


def test_docs_reference_a_meaningful_number_of_paths():
    # Guard against the checks above passing vacuously because a refactor
    # changed the inline-code convention: the docs name many real paths.
    spans = [
        span
        for doc in DOC_FILES
        for span in _CODE_SPAN_RE.findall(_prose(doc))
        if _PATH_REF_RE.match(span) and "*" not in span
    ]
    assert len(spans) >= 40, f"only {len(spans)} path references found"


class TestScenarioExamples:
    SCENARIOS = REPO_ROOT / "docs" / "SCENARIOS.md"

    @staticmethod
    def _specs(fence: str) -> list[str]:
        return [
            line.strip()
            for line in fence.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]

    def test_every_fault_example_parses(self):
        fences = _fences(self.SCENARIOS, "fault-dsl")
        assert len(fences) >= 3, "SCENARIOS.md lost its fault-dsl examples"
        for fence in fences:
            for spec in self._specs(fence):
                plan = FaultPlan.parse([spec])
                plan.validate(VALIDATION_NODES)

    def test_every_traffic_example_parses(self):
        fences = _fences(self.SCENARIOS, "traffic-dsl")
        assert len(fences) >= 3, "SCENARIOS.md lost its traffic-dsl examples"
        for fence in fences:
            for spec in self._specs(fence):
                # Each line is one phase; as the only phase of its plan it
                # is also the last, so an omitted `until` stays legal.
                plan = TrafficPlan.parse([spec])
                plan.validate()

    def test_python_examples_execute(self):
        fences = _fences(self.SCENARIOS, "python")
        assert fences, "SCENARIOS.md lost its runnable python example"
        for fence in fences:
            exec(compile(fence, str(self.SCENARIOS), "exec"), {"__name__": "__docs__"})
