"""End-to-end fault-plane behaviour of the four protocols.

The contract this suite pins:

* fail-free behaviour is untouched (covered by the golden-history suite);
* with a fault plan installed, runs remain deterministic (same seed + same
  plan -> byte-identical committed history);
* SSS keeps external consistency under crashes and partitions — faults cost
  availability (phases, stalls), never correctness;
* the 2PC-baseline also holds (durable prepared state + decision re-send);
* crash recovery actually recovers: after a crash+restart the cluster
  drains with no stalled clients and no leaked pre-commit state;
* the weaker baselines keep their own contracts under faults too — ROCOCO
  stays serializable across crash/replay orderings (piece redo log + order
  fencing), Walter keeps dirty-read freedom and replica convergence across
  propagation gaps (durable ack-watermarked streams), and Walter's
  dead-participant aborts stay inside the retry envelope instead of the
  old ~40 ms prepare-timeout drain.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.common.config import ClusterConfig, FaultPlan, WorkloadConfig
from repro.harness.runner import run_experiment


def _config(faults, *, n_nodes=3, replication_degree=2, seed=11, **overrides):
    defaults = dict(
        n_nodes=n_nodes,
        n_keys=40,
        replication_degree=replication_degree,
        clients_per_node=3,
        seed=seed,
        faults=FaultPlan.parse(faults) if faults else FaultPlan(),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _run(protocol, config, duration_us=120_000, **kwargs):
    return run_experiment(
        protocol,
        config,
        WorkloadConfig(read_only_fraction=0.5),
        duration_us=duration_us,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
        **kwargs,
    )


CRASH_RESTART = ["crash node=1 at=30ms for=15ms"]
CRASH_FOREVER = ["crash node=1 at=30ms"]
PARTITION = ["partition groups=0|1,2 at=30ms for=15ms"]
SLOWLINK = ["slowlink src=0 dst=1 at=30ms for=30ms factor=10 extra=500us"]


def _history_digest(history) -> str:
    lines = [
        f"{txn.txn_id}|{txn.external_commit_time!r}|"
        f"{','.join(map(str, txn.writes))}"
        for txn in history.committed
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestSSSUnderFaults:
    @pytest.mark.parametrize(
        "faults", [CRASH_RESTART, PARTITION, SLOWLINK], ids=["crash", "partition", "slowlink"]
    )
    def test_consistency_preserved(self, faults):
        result = _run("sss", _config(faults))
        check = result.cluster.check_consistency()
        assert check.ok, f"SSS violated external consistency under {faults}: {check}"
        assert result.metrics.committed > 0

    def test_crash_restart_recovers_fully(self):
        result = _run("sss", _config(CRASH_RESTART))
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.extra["quiescence_leaked_writers"] == 0
        assert metrics.extra["quiescence_commit_queue"] == 0
        # The final fail-free phase must beat the crash window by a wide
        # margin (recovery), even if it does not reach 100%.
        crash_phase = next(p for p in metrics.phases if "crash" in p["label"])
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > crash_phase["availability"]
        assert tail_phase["availability"] > 0.3

    def test_crash_forever_stalls_but_stays_consistent(self):
        result = _run("sss", _config(CRASH_FOREVER))
        assert result.cluster.check_consistency().ok
        # Blocking, not corruption: some clients may be stuck on the dead
        # node's participants, and nothing ever leaks inconsistently.
        assert result.metrics.extra["stalled_clients"] >= 0

    def test_buffered_partition_heals_without_stalls(self):
        result = _run("sss", _config(PARTITION))
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.extra["quiescence_leaked_writers"] == 0
        network_stats = result.cluster.network.stats
        assert network_stats.held > 0, "the partition never held a message"
        assert network_stats.released == network_stats.held
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > 0.5

    def test_availability_dips_during_fault_windows(self):
        result = _run("sss", _config(CRASH_RESTART))
        crash_phase = next(p for p in result.metrics.phases if "crash" in p["label"])
        first_phase = result.metrics.phases[0]
        assert first_phase["availability"] == 1.0
        assert crash_phase["availability"] < 0.5

    def test_fault_events_recorded_in_engine_log(self):
        result = _run("sss", _config(CRASH_RESTART))
        labels = [label for _t, label in result.cluster.sim.fault_log]
        assert labels == ["crash:1", "restart:1"]


class TestBaselinesUnderFaults:
    def test_twopc_keeps_external_consistency_under_crash(self):
        result = _run("2pc", _config(CRASH_RESTART))
        assert result.cluster.check_consistency().ok
        assert result.metrics.extra["stalled_clients"] == 0

    def test_twopc_partition_consistent(self):
        result = _run("2pc", _config(PARTITION))
        assert result.cluster.check_consistency().ok

    @pytest.mark.parametrize("protocol,rf", [("walter", 2), ("rococo", 1)])
    def test_weaker_protocols_survive_crash_and_keep_contract(self, protocol, rf):
        """Walter/ROCOCO recover availability *and* keep their own
        consistency contracts (committed reads + convergence for Walter,
        serializability + committed reads for ROCOCO) — the crash-recovery
        machinery removed the old correctness-for-availability trade."""
        result = _run(
            protocol,
            _config(CRASH_RESTART, replication_degree=rf),
            drain_us=30_000,
        )
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > 0.2
        for check in result.cluster.check_contract():
            assert check.ok, f"{protocol} broke {check.name} under crash: {check}"


class TestFaultDeterminism:
    def test_same_plan_same_seed_same_history(self):
        digests = set()
        for _ in range(2):
            result = _run("sss", _config(CRASH_RESTART), duration_us=60_000)
            digests.add(_history_digest(result.cluster.history))
        assert len(digests) == 1

    def test_different_plans_differ(self):
        with_faults = _run("sss", _config(CRASH_RESTART), duration_us=60_000)
        without = _run("sss", _config(None), duration_us=60_000, drain_us=25_000)
        assert _history_digest(with_faults.cluster.history) != _history_digest(
            without.cluster.history
        )


class TestQuiescenceLeakRegression:
    """The (formerly xfailed) pathological micro-config regressions, now strict.

    In pathological micro-configs (4-5 keys, rf=1, high contention) the
    external-commit dependency gating used to convert a 4-party read
    pattern (two read-only transactions bridging two independent
    pre-committing writers) into a wait cycle that leaked pre-commit state
    at quiescence (seeds 3/29), and the ambiguous-zone timeout-then-exclude
    heuristic could serialize a reader before an already-answered writer —
    a real external-consistency violation (seed 17).

    The ordered external-commit resolution closed both: ambiguous writers
    are resolved definitively at their coordinators (ExternalStatusQuery),
    an exclusion of a confirmed in-flight writer gates that writer's client
    answer behind the reader (so contradictory serialization decisions can
    at worst deadlock, never commit), reads refuse real-time-stale bounds,
    and the dependency-wait breaker restarts a stuck read-only transaction
    under a fresh snapshot (externally invisible — read-only transactions
    still never abort).  These seeds are pinned strict: any leak, stall or
    consistency violation here is a regression.
    """

    @staticmethod
    def _stress(seed):
        config = ClusterConfig(
            n_nodes=4,
            n_keys=4,
            replication_degree=1,
            clients_per_node=3,
            seed=seed,
        )
        return run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5, update_txn_keys=2),
            duration_us=60_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
            drain_us=40_000,
        )

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_no_precommit_state_leaks_and_consistency_at_quiescence(self, seed):
        result = self._stress(seed)
        check = result.cluster.check_consistency()
        assert check.ok, f"external consistency violated at seed {seed}: {check}"
        metrics = result.metrics
        assert metrics.extra["quiescence_leaked_writers"] == 0
        assert metrics.extra["quiescence_commit_queue"] == 0
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.committed > 0
        # The wait-cycle breaker may only ever withdraw read-only
        # transactions invisibly: no read-only abort reaches the history.
        read_only_aborts = [
            txn for txn in result.cluster.history.aborted if not txn.is_update
        ]
        assert read_only_aborts == []


class TestCoordinatorCrashSessionTeardown:
    """Regression: the Walter small-offset double-commit.

    When a coordinator crash-stops while a client process is suspended on a
    purely *local* step (Walter's local-replica reads charge cpu() with no
    network round-trip to fail), the fault plane marks the in-flight
    transaction ABORTED under the client's feet.  The session used to let
    the resumed client drive ``txn_commit`` against the dead transaction —
    on Walter this raised ``TransactionStateError`` (a double state
    transition) and killed the whole run.  ``Session._require_open`` now
    surfaces the crash as ``NodeCrashedError``, the documented
    client-visible outcome, and the client reconnects.
    """

    # Small offsets land the crash inside the local-read window; this exact
    # configuration reproduced the crash before the fix.
    SMALL_OFFSET_CRASH = ["crash node=1 at=3750us for=2250us"]

    def test_walter_survives_small_offset_crash(self):
        # drain long enough for Walter's prepare timeout (~40 ms) to abort
        # updates whose participant crashed mid-prepare; those are slow
        # aborts, not stalls.
        result = _run(
            "walter",
            _config(self.SMALL_OFFSET_CRASH, n_keys=400, seed=2024),
            duration_us=15_000,
            drain_us=45_000,
        )
        metrics = result.metrics
        assert metrics.committed > 0
        assert metrics.aborted > 0  # the torn-down transactions abort cleanly
        assert metrics.extra["stalled_clients"] == 0

    @pytest.mark.parametrize("protocol", ["sss", "2pc", "walter", "rococo"])
    def test_all_protocols_survive_crash_offset_sweep(self, protocol):
        # Sweep the crash instant across the transaction lifecycle so the
        # teardown window keeps being exercised as service times shift.
        for at_us in (1_500, 3_750, 7_500):
            result = _run(
                protocol,
                _config([f"crash node=1 at={at_us}us for=2250us"], n_keys=400, seed=2024),
                duration_us=15_000,
            )
            assert result.metrics.committed > 0, (protocol, at_us)


class TestRococoReplayOrdering:
    """ROCOCO's piece redo log and order fencing under crash/replay races.

    The historical Known Defect: a server restarting mid-transaction lost
    its volatile piece state, so a fault-mode re-send could re-execute a
    piece *behind* already-executed higher-ordered pieces — a replay
    reordering that broke serializability.  The durable piece redo log
    replays logged-but-unexecuted pieces in order on restart, and the order
    fence refuses anything below the executed frontier.  The fence is a
    backstop: because the dispatch round completes on every server before
    any order is assigned, a correctly recovered server never actually has
    to refuse — so these tests pin ``order_fence_refusals == 0`` as well.
    """

    # Offsets straddle the dispatch round (~piece payload logged, no order
    # yet), the execute round (order assigned, execution racing the crash)
    # and the post-commit window; the short down-time makes the restart's
    # replay race live fault-mode re-sends of the same pieces.
    CRASH_OFFSETS_US = (1_500, 3_750, 7_500, 30_000)

    @pytest.mark.parametrize("at_us", CRASH_OFFSETS_US)
    def test_replay_keeps_serializability_across_crash_offsets(self, at_us):
        result = _run(
            "rococo",
            _config(
                [f"crash node=1 at={at_us}us for=2250us"],
                replication_degree=1,
                n_keys=40,
                seed=2024,
            ),
            duration_us=60_000,
            drain_us=30_000,
        )
        for check in result.cluster.check_contract():
            assert check.ok, f"rococo broke {check.name} at crash offset {at_us}: {check}"
        assert result.node_counters.get("order_fence_refusals", 0) == 0
        assert result.metrics.extra["stalled_clients"] == 0

    def test_crash_window_exercises_replay_and_crash_completion(self):
        # Across a contended sweep the recovery machinery must actually
        # engage — otherwise the offsets above silently stopped covering
        # the dispatch/execute race and this suite tests nothing.
        engaged = 0
        for seed in (11, 2024, 77):
            result = _run(
                "rococo",
                _config(CRASH_RESTART, replication_degree=1, seed=seed),
                drain_us=30_000,
            )
            counters = result.node_counters
            engaged += counters.get("pieces_replayed", 0)
            engaged += counters.get("crash_completed_commits", 0)
            engaged += counters.get("crash_recoveries", 0)
            for check in result.cluster.check_contract():
                assert check.ok, f"seed {seed}: {check}"
        assert engaged > 0, "no crash ever engaged the redo log / recovery path"


class TestWalterPropagationDurability:
    """Walter's durable propagation streams: no batch is ever lost.

    The historical gap: ``_async_propagate`` was fire-and-forget, so a
    crash (sender or receiver) or a partition could permanently lose a
    propagation batch and the replicas of a key silently diverged.  The
    propagation log force-writes every batch, receivers apply in stream
    order (buffering gaps) and ack a cumulative watermark, and restart plus
    the fault-mode cadence retransmit everything above the watermark.
    """

    def test_crash_retransmits_until_replicas_converge(self):
        result = _run(
            "walter",
            _config(CRASH_RESTART, replication_degree=2),
            drain_us=30_000,
        )
        for check in result.cluster.check_contract():
            assert check.ok, f"walter broke {check.name} under crash: {check}"
        # The crash must have forced actual retransmission work...
        assert result.node_counters.get("propagation_retransmits", 0) > 0
        # ...and at quiescence every durable stream has been fully acked.
        for node in result.cluster.nodes:
            assert not node.plog.has_unacked(), (
                f"node {node.node_id} still holds unacked propagation records"
            )

    def test_partition_heals_with_watermark_catchup(self):
        result = _run(
            "walter",
            _config(PARTITION, replication_degree=2),
            drain_us=30_000,
        )
        for check in result.cluster.check_contract():
            assert check.ok, f"walter broke {check.name} under partition: {check}"
        # After the heal the watermarks catch up: nothing left unacked and
        # every receiver's applied watermark matches what was sent to it.
        for node in result.cluster.nodes:
            assert not node.plog.has_unacked()
        for sender in result.cluster.nodes:
            sent_to = sender.plog._next_stream_seq
            for destination, high in sent_to.items():
                receiver = result.cluster.nodes[destination]
                applied = receiver._prop_applied.get(sender.node_id, 0)
                assert applied == high, (
                    f"receiver {destination} applied watermark {applied} != "
                    f"stream high {high} from sender {sender.node_id}"
                )

    def test_crash_offset_sweep_never_diverges(self):
        # The small-offset window that produced the session-teardown bug is
        # also the hardest propagation race: decide applied, propagation
        # half-sent, crash.  Sweep it and require convergence every time.
        for at_us in (1_500, 3_750, 7_500):
            result = _run(
                "walter",
                _config(
                    [f"crash node=1 at={at_us}us for=2250us"],
                    n_keys=400,
                    seed=2024,
                ),
                duration_us=15_000,
                drain_us=30_000,
            )
            for check in result.cluster.check_contract():
                assert check.ok, f"offset {at_us}: {check}"


class TestWalterBoundedPrepareAbort:
    """Regression pin: dead-participant slow aborts stay inside the retry
    envelope.

    Before the fault-mode prepare retry cadence, an update whose slow-path
    participant crash-stopped sat on the full ``prepare_timeout_us`` (50 ms
    — the "~40 ms drain" the session-teardown test historically budgeted
    for).  With ``vote_round_retry`` the coordinator re-sends every
    ``crash_resubscribe_us`` (5 ms) and gives up after
    ``prepare_retry_limit`` (3) resends: the abort lands within ~20 ms, so
    a 30 ms drain — well under the old timeout — must fully quiesce.
    """

    def test_dead_participant_abort_bounded_by_retry_envelope(self):
        config = _config(CRASH_FOREVER, replication_degree=2)
        timeouts = config.timeouts
        envelope_us = (timeouts.prepare_retry_limit + 1) * timeouts.crash_resubscribe_us
        assert envelope_us < timeouts.prepare_timeout_us, (
            "retry envelope must undercut the prepare timeout for the bound "
            "to mean anything"
        )
        result = _run("walter", config, duration_us=60_000, drain_us=30_000)
        counters = result.node_counters
        # The bound must have been exercised: some slow-path prepare gave up
        # through the retry cadence, and no survivor is left stalled on the
        # old 50 ms timeout (the 30 ms drain would catch that as a stall).
        assert counters.get("prepare_retry_aborts", 0) > 0
        assert result.metrics.extra["stalled_clients"] == 0
        # Dirty-read freedom still holds; convergence is deliberately not
        # asserted — the victim never restarts, so its replicas legitimately
        # miss the tail of the propagation streams.
        from repro.consistency.checkers import check_committed_reads

        check = check_committed_reads(result.cluster.history)
        assert check.ok, f"dead-participant aborts leaked dirty reads: {check}"
