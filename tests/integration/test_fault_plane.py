"""End-to-end fault-plane behaviour of the four protocols.

The contract this suite pins:

* fail-free behaviour is untouched (covered by the golden-history suite);
* with a fault plan installed, runs remain deterministic (same seed + same
  plan -> byte-identical committed history);
* SSS keeps external consistency under crashes and partitions — faults cost
  availability (phases, stalls), never correctness;
* the 2PC-baseline also holds (durable prepared state + decision re-send);
* crash recovery actually recovers: after a crash+restart the cluster
  drains with no stalled clients and no leaked pre-commit state.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.common.config import ClusterConfig, FaultPlan, WorkloadConfig
from repro.harness.runner import run_experiment


def _config(faults, *, n_nodes=3, replication_degree=2, seed=11, **overrides):
    defaults = dict(
        n_nodes=n_nodes,
        n_keys=40,
        replication_degree=replication_degree,
        clients_per_node=3,
        seed=seed,
        faults=FaultPlan.parse(faults) if faults else FaultPlan(),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _run(protocol, config, duration_us=120_000, **kwargs):
    return run_experiment(
        protocol,
        config,
        WorkloadConfig(read_only_fraction=0.5),
        duration_us=duration_us,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
        **kwargs,
    )


CRASH_RESTART = ["crash node=1 at=30ms for=15ms"]
CRASH_FOREVER = ["crash node=1 at=30ms"]
PARTITION = ["partition groups=0|1,2 at=30ms for=15ms"]
SLOWLINK = ["slowlink src=0 dst=1 at=30ms for=30ms factor=10 extra=500us"]


def _history_digest(history) -> str:
    lines = [
        f"{txn.txn_id}|{txn.external_commit_time!r}|"
        f"{','.join(map(str, txn.writes))}"
        for txn in history.committed
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestSSSUnderFaults:
    @pytest.mark.parametrize(
        "faults", [CRASH_RESTART, PARTITION, SLOWLINK], ids=["crash", "partition", "slowlink"]
    )
    def test_consistency_preserved(self, faults):
        result = _run("sss", _config(faults))
        check = result.cluster.check_consistency()
        assert check.ok, f"SSS violated external consistency under {faults}: {check}"
        assert result.metrics.committed > 0

    def test_crash_restart_recovers_fully(self):
        result = _run("sss", _config(CRASH_RESTART))
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.extra["quiescence_leaked_writers"] == 0
        assert metrics.extra["quiescence_commit_queue"] == 0
        # The final fail-free phase must beat the crash window by a wide
        # margin (recovery), even if it does not reach 100%.
        crash_phase = next(p for p in metrics.phases if "crash" in p["label"])
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > crash_phase["availability"]
        assert tail_phase["availability"] > 0.3

    def test_crash_forever_stalls_but_stays_consistent(self):
        result = _run("sss", _config(CRASH_FOREVER))
        assert result.cluster.check_consistency().ok
        # Blocking, not corruption: some clients may be stuck on the dead
        # node's participants, and nothing ever leaks inconsistently.
        assert result.metrics.extra["stalled_clients"] >= 0

    def test_buffered_partition_heals_without_stalls(self):
        result = _run("sss", _config(PARTITION))
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.extra["quiescence_leaked_writers"] == 0
        network_stats = result.cluster.network.stats
        assert network_stats.held > 0, "the partition never held a message"
        assert network_stats.released == network_stats.held
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > 0.5

    def test_availability_dips_during_fault_windows(self):
        result = _run("sss", _config(CRASH_RESTART))
        crash_phase = next(p for p in result.metrics.phases if "crash" in p["label"])
        first_phase = result.metrics.phases[0]
        assert first_phase["availability"] == 1.0
        assert crash_phase["availability"] < 0.5

    def test_fault_events_recorded_in_engine_log(self):
        result = _run("sss", _config(CRASH_RESTART))
        labels = [label for _t, label in result.cluster.sim.fault_log]
        assert labels == ["crash:1", "restart:1"]


class TestBaselinesUnderFaults:
    def test_twopc_keeps_external_consistency_under_crash(self):
        result = _run("2pc", _config(CRASH_RESTART))
        assert result.cluster.check_consistency().ok
        assert result.metrics.extra["stalled_clients"] == 0

    def test_twopc_partition_consistent(self):
        result = _run("2pc", _config(PARTITION))
        assert result.cluster.check_consistency().ok

    @pytest.mark.parametrize("protocol,rf", [("walter", 2), ("rococo", 1)])
    def test_weaker_protocols_survive_crash_without_stalling(self, protocol, rf):
        """Walter/ROCOCO recover availability; their consistency under
        crashes is *not* guaranteed (PSI anomalies, order-based replay) and
        is deliberately not asserted here."""
        result = _run(protocol, _config(CRASH_RESTART, replication_degree=rf))
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        tail_phase = metrics.phases[-1]
        assert tail_phase["availability"] > 0.2


class TestFaultDeterminism:
    def test_same_plan_same_seed_same_history(self):
        digests = set()
        for _ in range(2):
            result = _run("sss", _config(CRASH_RESTART), duration_us=60_000)
            digests.add(_history_digest(result.cluster.history))
        assert len(digests) == 1

    def test_different_plans_differ(self):
        with_faults = _run("sss", _config(CRASH_RESTART), duration_us=60_000)
        without = _run("sss", _config(None), duration_us=60_000, drain_us=25_000)
        assert _history_digest(with_faults.cluster.history) != _history_digest(
            without.cluster.history
        )


class TestQuiescenceLeakRegression:
    """The (formerly xfailed) pathological micro-config regressions, now strict.

    In pathological micro-configs (4-5 keys, rf=1, high contention) the
    external-commit dependency gating used to convert a 4-party read
    pattern (two read-only transactions bridging two independent
    pre-committing writers) into a wait cycle that leaked pre-commit state
    at quiescence (seeds 3/29), and the ambiguous-zone timeout-then-exclude
    heuristic could serialize a reader before an already-answered writer —
    a real external-consistency violation (seed 17).

    The ordered external-commit resolution closed both: ambiguous writers
    are resolved definitively at their coordinators (ExternalStatusQuery),
    an exclusion of a confirmed in-flight writer gates that writer's client
    answer behind the reader (so contradictory serialization decisions can
    at worst deadlock, never commit), reads refuse real-time-stale bounds,
    and the dependency-wait breaker restarts a stuck read-only transaction
    under a fresh snapshot (externally invisible — read-only transactions
    still never abort).  These seeds are pinned strict: any leak, stall or
    consistency violation here is a regression.
    """

    @staticmethod
    def _stress(seed):
        config = ClusterConfig(
            n_nodes=4,
            n_keys=4,
            replication_degree=1,
            clients_per_node=3,
            seed=seed,
        )
        return run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5, update_txn_keys=2),
            duration_us=60_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
            drain_us=40_000,
        )

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_no_precommit_state_leaks_and_consistency_at_quiescence(self, seed):
        result = self._stress(seed)
        check = result.cluster.check_consistency()
        assert check.ok, f"external consistency violated at seed {seed}: {check}"
        metrics = result.metrics
        assert metrics.extra["quiescence_leaked_writers"] == 0
        assert metrics.extra["quiescence_commit_queue"] == 0
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.committed > 0
        # The wait-cycle breaker may only ever withdraw read-only
        # transactions invisibly: no read-only abort reaches the history.
        read_only_aborts = [
            txn for txn in result.cluster.history.aborted if not txn.is_update
        ]
        assert read_only_aborts == []


class TestCoordinatorCrashSessionTeardown:
    """Regression: the Walter small-offset double-commit.

    When a coordinator crash-stops while a client process is suspended on a
    purely *local* step (Walter's local-replica reads charge cpu() with no
    network round-trip to fail), the fault plane marks the in-flight
    transaction ABORTED under the client's feet.  The session used to let
    the resumed client drive ``txn_commit`` against the dead transaction —
    on Walter this raised ``TransactionStateError`` (a double state
    transition) and killed the whole run.  ``Session._require_open`` now
    surfaces the crash as ``NodeCrashedError``, the documented
    client-visible outcome, and the client reconnects.
    """

    # Small offsets land the crash inside the local-read window; this exact
    # configuration reproduced the crash before the fix.
    SMALL_OFFSET_CRASH = ["crash node=1 at=3750us for=2250us"]

    def test_walter_survives_small_offset_crash(self):
        # drain long enough for Walter's prepare timeout (~40 ms) to abort
        # updates whose participant crashed mid-prepare; those are slow
        # aborts, not stalls.
        result = _run(
            "walter",
            _config(self.SMALL_OFFSET_CRASH, n_keys=400, seed=2024),
            duration_us=15_000,
            drain_us=45_000,
        )
        metrics = result.metrics
        assert metrics.committed > 0
        assert metrics.aborted > 0  # the torn-down transactions abort cleanly
        assert metrics.extra["stalled_clients"] == 0

    @pytest.mark.parametrize("protocol", ["sss", "2pc", "walter", "rococo"])
    def test_all_protocols_survive_crash_offset_sweep(self, protocol):
        # Sweep the crash instant across the transaction lifecycle so the
        # teardown window keeps being exercised as service times shift.
        for at_us in (1_500, 3_750, 7_500):
            result = _run(
                protocol,
                _config([f"crash node=1 at={at_us}us for=2250us"], n_keys=400, seed=2024),
                duration_us=15_000,
            )
            assert result.metrics.committed > 0, (protocol, at_us)
