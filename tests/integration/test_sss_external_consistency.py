"""External-consistency behaviour of SSS: the paper's running examples.

These tests reproduce the two scenarios of Section III-D:

* Figure 1 — an update transaction with an anti-dependency on a concurrent
  read-only transaction delays its client response (external commit) until
  the read-only transaction has returned.
* Figure 2 — two read-only transactions running on different nodes never
  observe two non-conflicting update transactions in different orders.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.consistency.checkers import (
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.core.cluster import SSSCluster
from repro.harness.runner import run_experiment


def _cluster(n_nodes=2, n_keys=8, rf=1, seed=21, **kwargs) -> SSSCluster:
    config = ClusterConfig(
        n_nodes=n_nodes,
        n_keys=n_keys,
        replication_degree=rf,
        clients_per_node=1,
        seed=seed,
    )
    return SSSCluster(config, record_history=True, **kwargs)


class TestAntiDependencyDelay:
    """Figure 1: a writer waits for the concurrent reader before replying."""

    def _run_scenario(self, hold_reader_us: float):
        cluster = _cluster(n_nodes=2, n_keys=6, rf=1, seed=5)
        # Pick a key stored on node 1 so the read from node 0 is remote.
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)
        times = {}

        def reader(session):
            session.begin(read_only=True)
            value = yield from session.read(key)
            times["reader_read_value"] = value
            # Keep the transaction open: the writer must not externally
            # commit while this reader is still outstanding.
            yield session.node.sim.timeout(hold_reader_us)
            yield from session.commit()
            times["reader_return"] = cluster.now

        def writer(session):
            # Start slightly after the reader issued its read.
            yield session.node.sim.timeout(60)
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            ok = yield from session.commit()
            times["writer_ok"] = ok
            times["writer_return"] = cluster.now

        cluster.spawn(reader(cluster.session(0)))
        cluster.spawn(writer(cluster.session(1)))
        cluster.run()
        return cluster, times

    def test_writer_returns_after_reader(self):
        cluster, times = self._run_scenario(hold_reader_us=2_000)
        assert times["writer_ok"] is True
        assert times["reader_read_value"] == 0
        # External consistency: the writer's client response comes after the
        # reader's, because the reader is serialized before the writer.
        assert times["writer_return"] >= times["reader_return"]
        assert check_external_consistency(cluster.history).ok

    def test_writer_precommit_wait_scales_with_reader_hold(self):
        _cluster1, fast = self._run_scenario(hold_reader_us=200)
        _cluster2, slow = self._run_scenario(hold_reader_us=4_000)
        fast_wait = fast["writer_return"]
        slow_wait = slow["writer_return"]
        assert slow_wait > fast_wait + 2_000

    def test_writer_version_still_visible_to_later_transactions(self):
        """Pre-commit blocks the client response, not the written versions."""
        cluster = _cluster(n_nodes=2, n_keys=6, rf=1, seed=8)
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)
        observed = {}

        def long_reader(session):
            session.begin(read_only=True)
            yield from session.read(key)
            yield session.node.sim.timeout(5_000)
            yield from session.commit()

        def writer(session):
            yield session.node.sim.timeout(50)
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 10)
            yield from session.commit()

        def late_update_reader(session):
            # An update transaction reading after the writer internally
            # committed observes the new version even though the writer has
            # not externally committed yet.
            yield session.node.sim.timeout(1_500)
            session.begin(read_only=False)
            value = yield from session.read(key)
            observed["value"] = value
            observed["time"] = cluster.now
            session.write(key, value + 100)
            yield from session.commit()

        cluster.spawn(long_reader(cluster.session(0)))
        cluster.spawn(writer(cluster.session(1)))
        cluster.spawn(late_update_reader(cluster.session(1)))
        cluster.run()
        assert observed["value"] == 10
        assert observed["time"] < 5_000
        assert check_external_consistency(cluster.history).ok


class TestNonConflictingUpdatesOrdering:
    """Figure 2: read-only transactions agree on the order of independent writers."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_divergent_orders(self, seed):
        config = ClusterConfig(
            n_nodes=4, n_keys=2, replication_degree=1, clients_per_node=1, seed=seed
        )
        cluster = SSSCluster(config, record_history=True)
        key_x, key_y = cluster.keys[0], cluster.keys[1]
        observations = {}

        def reader(session, name, first, second):
            session.begin(read_only=True)
            a = yield from session.read(first)
            b = yield from session.read(second)
            yield from session.commit()
            observations[name] = {first: a, second: b}

        def writer(session, key):
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            yield from session.commit()

        cluster.spawn(reader(cluster.session(0), "T1", key_x, key_y))
        cluster.spawn(writer(cluster.session(1), key_x))
        cluster.spawn(writer(cluster.session(2), key_y))
        cluster.spawn(reader(cluster.session(3), "T4", key_y, key_x))
        cluster.run()

        # The anomaly would be T1 seeing (new x, old y) while T4 sees
        # (old x, new y): contradictory serialization orders of the two
        # independent writers.  Any other combination is consistent.
        t1, t4 = observations["T1"], observations["T4"]
        contradictory = (
            t1[key_x] > t4[key_x] and t1[key_y] < t4[key_y]
        ) or (t1[key_x] < t4[key_x] and t1[key_y] > t4[key_y])
        assert not contradictory
        assert check_external_consistency(cluster.history).ok
        assert check_snapshot_reads(cluster.history).ok


class TestRegressionScenarios:
    """Pinned counterexamples found by randomized stress runs.

    Each entry reproduced a distinct external-consistency (or liveness)
    defect of the original read-only path; the whole random workload is
    re-run and every consistency checker plus cluster quiescence asserted.
    """

    CASES = [
        # Reader observed a pre-committing writer inside its bound and
        # answered its client before the writer did (response-order leak).
        {"seed": 1, "n_nodes": 2, "n_keys": 4, "replication_degree": 1,
         "clients_per_node": 2, "read_only_fraction": 0.8},
        # Fractured snapshot via xactVN scalar collision: the NLog reached
        # the reader's bound while an install inside the bound was queued.
        {"seed": 270, "n_nodes": 4, "n_keys": 19, "replication_degree": 2,
         "clients_per_node": 2, "read_only_fraction": 0.2},
        # Cross-replica fracture: the reader's bound covered a writer it had
        # observed at a replica that had already passed its local wait.
        {"seed": 1, "n_nodes": 2, "n_keys": 4, "replication_degree": 2,
         "clients_per_node": 2, "read_only_fraction": 0.8},
        # Fastest-answer race: a losing replica's stale snapshot-queue entry
        # gated a writer against the reader's own dependency wait.
        {"seed": 80, "n_nodes": 3, "n_keys": 40, "replication_degree": 2,
         "clients_per_node": 2, "read_only_fraction": 0.8},
        # Ambiguous-zone writer (locally passed, not yet announced) bridged
        # by two readers into contradictory serialization orders.
        {"seed": 55328, "n_nodes": 4, "n_keys": 5, "replication_degree": 1,
         "clients_per_node": 2, "read_only_fraction": 0.8},
        # Excluding a pending writer would have capped the reader below an
        # already-done writer's colliding clock value (done-watermark rule).
        {"seed": 68423, "n_nodes": 3, "n_keys": 6, "replication_degree": 1,
         "clients_per_node": 2, "read_only_fraction": 0.5},
    ]

    @pytest.mark.parametrize("params", CASES, ids=lambda p: f"seed{p['seed']}")
    def test_stress_counterexamples_stay_fixed(self, params):
        import sys

        sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent.parent / "property"))
        from test_protocol_properties import run_random_workload

        cluster = run_random_workload("sss", params)
        history = cluster.history
        assert check_external_consistency(history).ok
        assert check_serializability(history).ok
        assert check_snapshot_reads(history).ok
        for node in cluster.nodes:
            assert node.queued_writer_count() == 0, "pre-commit entries leaked"
            assert len(node.commit_queue) == 0, "commit queue not drained"
            assert not node._ack_waits, "external-ack waits leaked"


class TestWorkloadLevelConsistency:
    """Closed-loop mixed workloads keep producing externally consistent histories."""

    @pytest.mark.parametrize("read_only_fraction", [0.2, 0.5, 0.8])
    def test_mixed_workload_history_is_external_consistent(self, read_only_fraction):
        config = ClusterConfig(
            n_nodes=3,
            n_keys=40,
            replication_degree=2,
            clients_per_node=2,
            seed=int(read_only_fraction * 100),
        )
        workload = WorkloadConfig(read_only_fraction=read_only_fraction)
        result = run_experiment(
            "sss",
            config,
            workload,
            duration_us=30_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        history = result.cluster.history
        assert len(history.committed) > 50
        assert check_external_consistency(history).ok
        assert check_serializability(history).ok
        assert check_snapshot_reads(history).ok

    def test_strict_visibility_mode_matches(self):
        """The strict (whole-log) visibility computation is also consistent."""
        config = ClusterConfig(
            n_nodes=3, n_keys=30, replication_degree=2, clients_per_node=2, seed=77
        )
        cluster = SSSCluster(config, record_history=True, strict_visibility=True)
        workload = WorkloadConfig(read_only_fraction=0.5)

        from repro.workload.profiles import WorkloadGenerator
        from repro.workload.ycsb import ClientStats, closed_loop_client

        for node_id in range(config.n_nodes):
            for client in range(config.clients_per_node):
                session = cluster.session(node_id)
                generator = WorkloadGenerator(
                    workload,
                    cluster.keys,
                    cluster.sim.rng.stream(f"w{node_id}.{client}"),
                )
                cluster.spawn(
                    closed_loop_client(
                        session,
                        generator,
                        ClientStats(node_id, client),
                        deadline_us=20_000,
                    )
                )
        cluster.run(until=25_000)
        assert len(cluster.history.committed) > 30
        assert check_external_consistency(cluster.history).ok
