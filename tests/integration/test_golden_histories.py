"""Golden-history equivalence of the protocol-runtime refactor.

The PR that introduced :mod:`repro.protocols` collapsed four independently
grown node runtimes (SSS + the three baselines) onto one shared
:class:`~repro.protocols.runtime.ProtocolRuntime`.  The refactor's contract
is that **fail-free histories are byte-identical** before and after the
port: same seed, same config, same committed history, bit for bit.

The fingerprints below were captured on the pre-refactor tree (commit
6f83410, "PR 2") with this very module's ``--write`` mode and committed to
``tests/golden/history_hashes.json``.  Any change to these hashes means the
refactor (or a later change) altered fail-free protocol behaviour — which is
only acceptable for a deliberate, documented protocol change, never for a
"pure" refactor.

The **SSS** fingerprints were deliberately re-captured by the
ambiguous-zone PR (ordered external-commit resolution): the fail-free read
path now resolves ambiguous writers definitively at their coordinators
(ExternalStatusQuery + answer gates) instead of excluding on timeout, which
legitimately changes fail-free serialization in the rare reads that used to
hit the timeout heuristic.  The three baseline protocols' histories were
untouched by that PR and still match their PR-2 capture bit for bit.

Regenerate (deliberately!) with::

    PYTHONPATH=src python tests/integration/test_golden_histories.py --write
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.runner import run_experiment

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "history_hashes.json"

#: (protocol, seed, replication_degree) -> one golden datapoint each.
GOLDEN_POINTS = [
    ("sss", 7, 2),
    ("sss", 13, 2),
    ("2pc", 7, 2),
    ("2pc", 13, 2),
    ("walter", 7, 2),
    ("walter", 13, 2),
    ("rococo", 7, 1),
    ("rococo", 13, 1),
]


def history_fingerprint(history) -> str:
    """Canonical byte-stable digest of a committed/aborted history.

    Mirrors the digest used by ``tests/unit/test_determinism.py`` so the two
    suites pin the same notion of "the history".
    """
    lines = []
    for txn in history.committed:
        reads = ";".join(
            f"{read.key}<-{read.writer}@{read.version_local_value}"
            for read in txn.reads
        )
        hints = ";".join(f"{key}={value}" for key, value in txn.write_version_hints)
        lines.append(
            f"{txn.txn_id}|{txn.coordinator}|{int(txn.is_update)}|{reads}|"
            f"{','.join(map(str, txn.writes))}|{txn.begin_time!r}|"
            f"{txn.external_commit_time!r}|{hints}"
        )
    for txn in history.aborted:
        lines.append(f"ABORT {txn.txn_id}|{txn.reason}|{txn.abort_time!r}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def run_golden_point(protocol: str, seed: int, replication_degree: int) -> str:
    """One fail-free experiment at a fixed micro-configuration."""
    config = ClusterConfig(
        n_nodes=3,
        n_keys=24,
        replication_degree=replication_degree,
        clients_per_node=2,
        seed=seed,
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=15_000,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
    )
    return history_fingerprint(result.cluster.history)


def _point_key(protocol: str, seed: int, replication_degree: int) -> str:
    return f"{protocol}/seed={seed}/rf={replication_degree}"


def load_golden() -> dict:
    with GOLDEN_PATH.open("r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize(
    "protocol,seed,replication_degree",
    GOLDEN_POINTS,
    ids=[_point_key(*point) for point in GOLDEN_POINTS],
)
def test_fail_free_history_matches_pre_refactor_golden(protocol, seed, replication_degree):
    golden = load_golden()
    key = _point_key(protocol, seed, replication_degree)
    assert key in golden["fingerprints"], (
        f"no golden fingerprint for {key}; regenerate with --write"
    )
    assert run_golden_point(protocol, seed, replication_degree) == (golden["fingerprints"][key]), (
        f"fail-free history for {key} diverged from the pre-refactor golden "
        "capture — the runtime port must preserve byte-identical histories"
    )


def write_golden() -> None:
    fingerprints = {}
    for protocol, seed, replication_degree in GOLDEN_POINTS:
        key = _point_key(protocol, seed, replication_degree)
        fingerprints[key] = run_golden_point(protocol, seed, replication_degree)
        print(f"{key}: {fingerprints[key]}")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "comment": (
            "Byte-identical fail-free history fingerprints captured before "
            "the ProtocolRuntime refactor (see test_golden_histories.py)."
        ),
        "config": {
            "n_nodes": 3,
            "n_keys": 24,
            "clients_per_node": 2,
            "duration_us": 15000,
            "warmup_us": 0,
            "read_only_fraction": 0.5,
        },
        "fingerprints": fingerprints,
    }
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--write" in sys.argv:
        write_golden()
    else:
        print(__doc__)
