"""Integration tests for open-loop experiments.

The properties pinned here are the ones the latency-load study stands on:

* below saturation the open-loop plumbing is lossless — goodput matches
  offered load and nothing is shed;
* past saturation goodput flattens while offered load keeps rising, and
  the bounded admission envelope sheds the difference (drops / queue
  timeouts) instead of letting the pending set grow without bound;
* scenario phases switch the workload mix mid-run;
* open-loop runs compose with the fault plane (constant offered load is
  the honest availability denominator);
* everything is deterministic: one seed, one result, including the time
  series.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, FaultPlan, TrafficPlan, WorkloadConfig
from repro.harness.runner import run_experiment

WORKLOAD = WorkloadConfig(read_only_fraction=0.5)


def _config(traffic: TrafficPlan, faults: FaultPlan = FaultPlan(), seed: int = 7):
    return ClusterConfig(
        n_nodes=3,
        n_keys=200,
        replication_degree=2,
        clients_per_node=0,
        seed=seed,
        faults=faults,
        traffic=traffic,
    )


class TestGoodputTracksOfferedLoad:
    def test_below_saturation_nothing_is_shed(self):
        config = _config(TrafficPlan.parse(["poisson rate=4000 tps"]))
        result = run_experiment("sss", config, WORKLOAD, duration_us=40_000, warmup_us=10_000)
        metrics = result.metrics
        assert metrics.extra["open_loop"] == 1.0
        assert metrics.extra["dropped"] == 0 and metrics.extra["timed_out"] == 0
        ratio = metrics.extra["goodput_tps"] / metrics.extra["offered_tps"]
        assert 0.9 <= ratio <= 1.1
        # Closed-loop throughput and open-loop goodput are the same number.
        assert metrics.extra["goodput_tps"] == pytest.approx(metrics.throughput_tps, rel=0.01)

    def test_deterministic_arrivals_hit_the_configured_rate(self):
        config = _config(TrafficPlan.parse(["const rate=3000"]))
        result = run_experiment("sss", config, WORKLOAD, duration_us=40_000, warmup_us=0)
        # 3000 tps for 40 ms: the aggregate grid has 120 points, the last
        # of which lands exactly on the (half-open) horizon — 119 arrive.
        assert result.metrics.extra["offered"] == 119


class TestOverload:
    def test_goodput_saturates_while_offered_keeps_rising(self):
        points = {}
        for rate in (24_000, 96_000, 192_000):
            config = _config(TrafficPlan.parse([f"poisson rate={rate}"]))
            result = run_experiment("2pc", config, WORKLOAD, duration_us=30_000, warmup_us=7_500)
            points[rate] = result.metrics.extra
        # Below saturation: tracking.
        assert points[24_000]["goodput_tps"] >= 0.9 * points[24_000]["offered_tps"]
        # Offered doubled past saturation; goodput moved a few percent at most.
        assert points[192_000]["offered_tps"] > 1.8 * points[96_000]["offered_tps"]
        assert points[192_000]["goodput_tps"] < 1.15 * points[96_000]["goodput_tps"]
        # The overload was shed explicitly, not absorbed silently.
        assert points[192_000]["dropped"] > 0
        assert points[192_000]["queue_depth_max"] >= points[96_000]["queue_depth_max"]

    def test_latency_inflects_past_saturation(self):
        latencies = {}
        for rate in (8_000, 128_000):
            config = _config(TrafficPlan.parse([f"poisson rate={rate}"]))
            result = run_experiment("sss", config, WORKLOAD, duration_us=30_000, warmup_us=7_500)
            latencies[rate] = result.metrics.latency.p99_us
        assert latencies[128_000] > 5 * latencies[8_000]

    def test_tiny_pending_set_times_out_queued_arrivals(self):
        plan = TrafficPlan.parse(
            ["poisson rate=60000"],
            max_pending=1,
            queue_limit=16,
            queue_timeout_us=2_000.0,
        )
        result = run_experiment("sss", _config(plan), WORKLOAD, duration_us=30_000, warmup_us=0)
        extra = result.metrics.extra
        assert extra["timed_out"] > 0
        assert extra["dropped"] > 0  # the 16-slot queue overflows too
        # Accounting is complete: everything offered is somewhere.
        accounted = (
            result.metrics.committed
            + result.metrics.aborted
            + extra["dropped"]
            + extra["timed_out"]
        )
        # In-flight/queued work at the deadline is the only slack (per node).
        assert accounted <= extra["offered"]
        assert accounted >= extra["offered"] - 3 * (1 + 16)


class TestScenarioPhases:
    def test_phase_overrides_shift_the_mix(self):
        plan = TrafficPlan.parse(
            [
                "poisson rate=4000 until=20ms read_only=0.05",
                "poisson rate=4000 read_only=0.95",
            ]
        )
        result = run_experiment("sss", _config(plan), WORKLOAD, duration_us=40_000, warmup_us=0)
        metrics = result.metrics
        fraction = metrics.committed_read_only / max(metrics.committed, 1)
        assert 0.35 <= fraction <= 0.65  # ~0.05 then ~0.95, half the run each
        labels = [phase["label"] for phase in metrics.phases]
        assert labels == ["t0:poisson@4000", "t1:poisson@4000"]
        # Scenario-phase summaries carry offered load per phase.
        for phase in metrics.phases:
            assert phase["offered"] > 0
            assert phase["committed"] > 0

    def test_timeseries_accounts_for_every_arrival(self):
        plan = TrafficPlan.parse(["ramp 1000..8000 over=30ms"], window_us=5_000.0)
        result = run_experiment("walter", _config(plan), WORKLOAD, duration_us=30_000, warmup_us=0)
        metrics = result.metrics
        series = metrics.timeseries
        assert len(series) == 6
        assert series[0]["start_us"] == 0.0 and series[-1]["end_us"] == 30_000
        assert sum(w["offered"] for w in series) == metrics.extra["offered"]
        assert sum(w["completed"] for w in series) <= metrics.committed + 1
        # The ramp is visible in the series: offered load grows window over
        # window, and the last window offers several times the first.
        offered = [w["offered"] for w in series]
        assert offered[-1] > 3 * offered[0]


class TestOpenLoopUnderFaults:
    def test_crash_costs_goodput_under_constant_offered_load(self):
        faults = FaultPlan.parse(["crash node=1 at=10ms for=10ms"])
        traffic = TrafficPlan.parse(["poisson rate=6000"])
        result = run_experiment(
            "sss",
            _config(traffic, faults=faults),
            WORKLOAD,
            duration_us=40_000,
            warmup_us=0,
        )
        metrics = result.metrics
        labels = [phase["label"] for phase in metrics.phases]
        assert any(label.endswith("|crash") for label in labels)
        assert any(label.endswith("|fail-free") for label in labels)
        availability = metrics.extra.get("availability_min")
        assert availability is not None and 0.0 <= availability < 1.0
        crash_phase = next(p for p in metrics.phases if p["label"].endswith("|crash"))
        fail_free = [
            p["throughput_tps"]
            for p in metrics.phases
            if p["label"].endswith("|fail-free") and p["committed"]
        ]
        assert crash_phase["throughput_tps"] < max(fail_free)
        # Offered load did not relent during the crash — that is the point.
        crash_width_s = (crash_phase["end_us"] - crash_phase["start_us"]) / 1e6
        assert crash_phase["offered"] >= 0.7 * 6000 * crash_width_s
        # The fault plan triggers a 25 ms post-run drain; work completing
        # in the drain must not be folded into the last time window (at
        # this seed at least one transaction completes during the drain,
        # so the strict inequality pins the exclusion).
        assert metrics.timeseries[-1]["end_us"] == 40_000
        assert sum(w["completed"] for w in metrics.timeseries) < metrics.committed


class TestDeterminism:
    def _fingerprint(self, seed: int):
        plan = TrafficPlan.parse(
            [
                "ramp 1000..24000 over=20ms until=20ms",
                "burst base=2000 peak=12000 every=8ms for=2ms",
            ]
        )
        result = run_experiment(
            "sss", _config(plan, seed=seed), WORKLOAD, duration_us=35_000, warmup_us=0
        )
        metrics = result.metrics
        return (
            metrics.committed,
            metrics.aborted,
            metrics.extra["offered"],
            metrics.extra["dropped"],
            metrics.extra["timed_out"],
            round(metrics.latency.p99_us, 9),
            tuple((w["offered"], w["completed"], w["latency_p99_us"]) for w in metrics.timeseries),
            tuple((p["label"], p["committed"], p["offered"]) for p in metrics.phases),
        )

    def test_same_seed_same_everything(self):
        assert self._fingerprint(3) == self._fingerprint(3)

    def test_different_seed_differs(self):
        assert self._fingerprint(3) != self._fingerprint(4)
