"""Trace byte-determinism: the export is a pure function of the scenario.

The trace plane's contract mirrors the history contracts: for a given
protocol, config and seed the exported Chrome trace JSON is *byte*
identical

* between the serial engine and the node-sharded parallel engine (the
  shard recorders tag events with engine keys and the merge reproduces
  the serial recording order);
* across shard counts (1, 2, 4) and execution modes (inline vs worker
  processes — trace payloads ride home in the shard reports);
* across interpreters with different ``PYTHONHASHSEED`` values;
* for every protocol × {fail-free, crash}.

Byte equality is asserted on :func:`repro.trace.export.trace_to_bytes` of
the exported document — the same canonical encoding
``run_experiment(trace="out.json")`` writes to disk.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import pytest

from repro.common.config import ClusterConfig, CrashFault, FaultPlan, WorkloadConfig
from repro.harness.runner import run_experiment
from repro.protocols.registry import protocol_names
from repro.trace import TraceSpec, export_chrome_trace, trace_to_bytes

WORKLOAD = WorkloadConfig(read_only_fraction=0.5)
DURATION_US = 8_000.0

FAULT_PLANS = {
    "fail-free": FaultPlan(),
    "crash": FaultPlan(faults=(CrashFault(node=1, at_us=2_500.0, duration_us=1_500.0),)),
}


def _config(faults=FaultPlan(), seed=5):
    return ClusterConfig(
        n_nodes=4,
        n_keys=48,
        replication_degree=2,
        clients_per_node=2,
        seed=seed,
        faults=faults,
    )


def _run(engine, protocol="sss", faults=FaultPlan(), seed=5, **kwargs):
    return run_experiment(
        protocol,
        _config(faults, seed=seed),
        WORKLOAD,
        duration_us=DURATION_US,
        warmup_us=0.0,
        trace=TraceSpec(),
        engine=engine,
        **kwargs,
    )


def _trace_bytes(result) -> bytes:
    assert result.trace is not None
    return trace_to_bytes(export_chrome_trace(result.trace))


def _trace_digest_for_subprocess(protocol: str = "sss", seed: int = 5) -> str:
    """Module-level hook for the PYTHONHASHSEED subprocess test."""
    result = _run(
        "parallel",
        protocol=protocol,
        faults=FAULT_PLANS["crash"],
        seed=seed,
        shards=2,
        parallel_mode="inline",
    )
    return hashlib.sha256(_trace_bytes(result)).hexdigest()


_SUBPROCESS_SNIPPET = (
    "import sys; sys.path.insert(0, {src!r}); sys.path.insert(0, {tests!r}); "
    "from test_trace_determinism import _trace_digest_for_subprocess; "
    "print(_trace_digest_for_subprocess({protocol!r}, {seed}))"
)


def _digest_in_subprocess(hash_seed: str, protocol: str = "sss", seed: int = 5) -> str:
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    snippet = _SUBPROCESS_SNIPPET.format(
        src=os.path.join(root, "src"),
        tests=os.path.join(root, "tests", "integration"),
        protocol=protocol,
        seed=seed,
    )
    output = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return output.stdout.strip()


class TestSerialParallelTraceEquivalence:
    @pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("protocol", protocol_names())
    def test_trace_bytes_identical(self, protocol, fault_name):
        faults = FAULT_PLANS[fault_name]
        serial = _run("serial", protocol=protocol, faults=faults)
        parallel = _run(
            "parallel", protocol=protocol, faults=faults, shards=2, parallel_mode="inline"
        )
        assert _trace_bytes(parallel) == _trace_bytes(serial)

    def test_repeated_serial_runs_identical(self):
        assert _trace_bytes(_run("serial")) == _trace_bytes(_run("serial"))


class TestShardAndModeInvariance:
    def test_shard_count_does_not_change_the_trace(self):
        faults = FAULT_PLANS["crash"]
        blobs = {
            shards: _trace_bytes(
                _run("parallel", faults=faults, shards=shards, parallel_mode="inline")
            )
            for shards in (1, 2, 4)
        }
        assert len(set(blobs.values())) == 1, sorted(blobs)
        assert blobs[2] == _trace_bytes(_run("serial", faults=faults))

    def test_process_mode_matches_inline(self):
        faults = FAULT_PLANS["crash"]
        inline = _run("parallel", faults=faults, shards=2, parallel_mode="inline")
        process = _run("parallel", faults=faults, shards=2, parallel_mode="process")
        assert _trace_bytes(process) == _trace_bytes(inline)


class TestHashSeedInvariance:
    def test_trace_bytes_stable_across_hash_seeds(self):
        local = hashlib.sha256(
            _trace_bytes(
                _run("parallel", faults=FAULT_PLANS["crash"], shards=2, parallel_mode="inline")
            )
        ).hexdigest()
        assert _digest_in_subprocess("0") == local
        assert _digest_in_subprocess("4242") == local
