"""End-to-end scenario search: scoring, campaign, planted bug, replay.

The expensive guarantees live here:

* **Scoring determinism** — the same genome scores to the identical signal
  vector in a fresh process under a different ``PYTHONHASHSEED``; without
  this, corpus decisions and repro bundles would be unstable.
* **Committed SSS-stall corpus genome** — the known post-restart
  ambiguous-wait stall (ROADMAP) reproduces from the checked-in corpus and
  a search campaign seeded with it emits a minimized repro bundle.
* **Planted-regression discovery** — with the PR-6 coordinator-crash
  teardown guard reverted (test-only env flag), a fixed-seed campaign
  rediscovers the historical Walter ``TransactionStateError`` crash from
  scratch, minimizes it, and the bundle replays.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.session import PLANTED_REGRESSION_ENV
from repro.search.corpus import Corpus
from repro.search.driver import SearchSettings, run_search
from repro.search.genome import ScenarioGenome
from repro.search.replay import replay_bundle
from repro.search.scoring import score_genome

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_CORPUS = REPO_ROOT / "benchmarks" / "search_corpus"

STALL_GENOME = ScenarioGenome(
    protocol="sss",
    n_nodes=3,
    n_keys=120,
    replication_degree=2,
    clients_per_node=3,
    seed=1,
    duration_us=30_000.0,
    drain_us=30_000.0,
    fault_specs=("crash node=1 at=3750 for=2250",),
).normalize()


class TestScoringDeterminism:
    def test_same_genome_same_signal_across_processes(self):
        """Signal vectors must not depend on process state or hash seed."""
        local = score_genome(STALL_GENOME)
        script = (
            "import json, sys\n"
            "from repro.search.genome import ScenarioGenome\n"
            "from repro.search.scoring import score_genome\n"
            "genome = ScenarioGenome.from_json(sys.stdin.read())\n"
            "print(json.dumps(score_genome(genome).as_dict(), sort_keys=True))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(PLANTED_REGRESSION_ENV, None)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=STALL_GENOME.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        remote = json.loads(completed.stdout)
        assert remote == local.as_dict()

    def test_repeated_scoring_is_identical(self):
        first = score_genome(STALL_GENOME)
        second = score_genome(STALL_GENOME)
        assert first.as_dict() == second.as_dict()


class TestKnownStall:
    def test_committed_corpus_genome_reproduces_the_stall(self):
        corpus_genomes = Corpus.load_genomes(COMMITTED_CORPUS)
        stall_seeds = [
            genome
            for genome in corpus_genomes
            if "crash node=1 at=3750 for=2250" in genome.fault_specs
        ]
        assert len(stall_seeds) >= 2, "SSS-stall genomes missing from committed corpus"
        outcome = score_genome(stall_seeds[0])
        assert "stall" in outcome.failures
        assert outcome.signal["excess_commit_gap_us"] > 40_000.0

    def test_campaign_seeded_with_stall_genome_emits_replayable_bundle(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        (corpus_dir / "stall.genome.json").write_text(STALL_GENOME.to_json() + "\n")
        out_dir = tmp_path / "out"
        settings = SearchSettings(
            protocols=("sss",),
            budget_runs=0,  # seed phase only: the committed genome IS the finding
            search_seed=1,
            corpus_dirs=(corpus_dir,),
            out_dir=out_dir,
            minimize_budget=25,
        )
        summary = run_search(settings)
        fingerprints = {finding.fingerprint for finding in summary.findings}
        assert "sss:stall" in fingerprints
        bundle = next(
            finding.bundle_path
            for finding in summary.findings
            if finding.fingerprint == "sss:stall"
        )
        assert bundle is not None and bundle.is_file()
        assert replay_bundle(bundle, out=open(os.devnull, "w")) == 0
        assert (out_dir / "search-summary.json").is_file()


class TestPlantedRegression:
    @pytest.fixture
    def planted(self, monkeypatch):
        monkeypatch.setenv(PLANTED_REGRESSION_ENV, "1")

    def test_searcher_rediscovers_reverted_crash_guard(self, planted, tmp_path, monkeypatch):
        """Fixed-seed campaign finds the historical Walter crash and minimizes it.

        The budget here is a couple dozen runs (well under the 5-minute CI
        box); the campaign must produce the ``walter:exception:
        TransactionStateError`` fingerprint, write a bundle, the bundle must
        replay while the regression is planted — and stop reproducing the
        moment the guard is restored.
        """
        out_dir = tmp_path / "out"
        settings = SearchSettings(
            protocols=("walter",),
            budget_runs=20,
            search_seed=5,
            out_dir=out_dir,
            minimize_budget=20,
        )
        summary = run_search(settings)
        target = "walter:exception:TransactionStateError"
        fingerprints = {finding.fingerprint for finding in summary.findings}
        assert target in fingerprints, (
            f"searcher missed the planted regression; found {sorted(fingerprints)}"
        )
        finding = next(f for f in summary.findings if f.fingerprint == target)
        # minimization produced a strictly-no-larger scenario that still fails
        assert finding.minimized.n_keys <= finding.genome.n_keys
        assert finding.minimized.duration_us <= finding.genome.duration_us
        assert finding.bundle_path is not None
        bundle = json.loads(finding.bundle_path.read_text())
        assert bundle["category"] == "exception:TransactionStateError"
        assert replay_bundle(finding.bundle_path, out=open(os.devnull, "w")) == 0
        # ... and with the fix back in place the bundle reports NOT REPRODUCED
        monkeypatch.delenv(PLANTED_REGRESSION_ENV)
        assert replay_bundle(finding.bundle_path, out=open(os.devnull, "w")) == 2


class TestCampaignDeterminism:
    def test_same_settings_same_findings_and_corpus(self, tmp_path):
        results = []
        for tag in ("a", "b"):
            out_dir = tmp_path / tag
            settings = SearchSettings(
                protocols=("rococo",),
                budget_runs=6,
                search_seed=11,
                out_dir=out_dir,
                minimize_budget=10,
                save_corpus=out_dir / "corpus",
            )
            summary = run_search(settings)
            corpus_files = sorted(
                path.name for path in (out_dir / "corpus").glob("*.genome.json")
            )
            corpus_bytes = [
                (out_dir / "corpus" / name).read_text() for name in corpus_files
            ]
            results.append(
                (
                    summary.runs,
                    [finding.fingerprint for finding in summary.findings],
                    corpus_files,
                    corpus_bytes,
                    (out_dir / "search-summary.json").read_text(),
                )
            )
        assert results[0] == results[1]
