"""Windowed checker vs post-hoc oracle: verdict equivalence on real runs.

The tentpole guarantee of the windowed consistency plane: for every sweep
shape the repo runs (each protocol, fail-free and faulted), feeding the
same committed history through the epoch-windowed checker — with a
retention small enough that most of the history is pruned mid-run — yields
the *same pass/fail verdict per check* as the post-hoc oracle over the
full history.  The oracle remains golden; the windowed checker must never
invent a violation (pruned-version reads, crash-frozen replica staleness)
nor lose one (sticky verdicts across closed epochs).
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, CrashFault, FaultPlan, WorkloadConfig
from repro.consistency.checkers import run_all_checks
from repro.consistency.window import WindowedConsistencyChecker, WindowedHistoryRecorder
from repro.harness.runner import run_experiment
from repro.protocols.registry import REGISTRY

DURATION_US = 30_000.0
# Deliberately tiny: ~2.5 retention spans fit in the run, so the checker
# closes many epochs and prunes most of the history while running.
EPOCH_US = 3_000.0
RETENTION_US = 9_000.0

FAULT_PLANS = {
    "fail-free": FaultPlan(),
    "crash": FaultPlan(faults=(CrashFault(node=1, at_us=3_750.0, duration_us=2_250.0),)),
}


def _config(faults):
    # Seed choice matters: the run must stay busy for several retention
    # spans, and some seeds land SSS in its (bounded, timeout-recovered)
    # post-restart ambiguous-wait stall right after the crash, leaving too
    # little history inside a 30 ms run for any epoch to close.  Seed 12 is
    # healthy for every protocol × fault combination here.
    return ClusterConfig(
        n_nodes=3,
        n_keys=120,
        replication_degree=2,
        clients_per_node=3,
        seed=12,
        faults=faults,
    )


@pytest.mark.parametrize("protocol", sorted(REGISTRY))
@pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
def test_windowed_verdicts_match_post_hoc(protocol, fault_name):
    result = run_experiment(
        protocol,
        _config(FAULT_PLANS[fault_name]),
        WorkloadConfig(read_only_fraction=0.5),
        duration_us=DURATION_US,
        warmup_us=0.0,
        record_history=True,
        keep_cluster=True,
    )
    history = result.cluster.history
    oracle = {check.name: check.ok for check in run_all_checks(history)}

    checker = WindowedConsistencyChecker(epoch_us=EPOCH_US, retention_us=RETENTION_US)
    for txn in sorted(history.committed, key=lambda t: t.external_commit_time):
        checker.observe(txn)
    windowed = {name: check.ok for name, check in checker.results().items()}

    assert windowed == oracle, {
        "windowed_violations": {
            name: check.violations[:5] for name, check in checker.results().items()
        }
    }
    # The run is several retention spans long, so the window really pruned.
    stats = checker.stats()
    assert stats["epochs_closed"] > 0
    assert stats["pruned"] > 0


def test_windowed_recorder_end_to_end_bounds_memory():
    # record_history="windowed" wires the online checker into the cluster:
    # commits stream straight into the checker, no full history is kept,
    # and check_consistency() answers from the sticky verdicts.
    result = run_experiment(
        "sss",
        _config(FaultPlan()),
        WorkloadConfig(read_only_fraction=0.5),
        duration_us=DURATION_US,
        warmup_us=0.0,
        record_history="windowed",
        keep_cluster=True,
    )
    recorder = result.cluster.history
    assert isinstance(recorder, WindowedHistoryRecorder)
    assert recorder.committed_count > 0
    assert not hasattr(recorder, "committed")  # no per-transaction retention

    check = result.cluster.check_consistency()
    assert check.ok, check.violations
    assert check.checked_transactions == recorder.checker.observed

    results = recorder.results()
    assert all(result.ok for result in results.values())


def test_unknown_record_history_mode_is_rejected():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_experiment(
            "sss",
            _config(FaultPlan()),
            WorkloadConfig(),
            duration_us=1_000.0,
            warmup_us=0.0,
            record_history="onlineish",
        )
