"""Integration tests for the three competitor protocols.

Each baseline must (a) execute transactions correctly through the shared
Session API, and (b) exhibit the guarantee level the paper ascribes to it:
the 2PC-baseline is externally consistent but aborts read-only transactions
under conflicts; Walter provides snapshot reads and never aborts or blocks
read-only transactions; ROCOCO never aborts update transactions and retries
read-only transactions.
"""

from __future__ import annotations

import pytest

from repro.baselines.rococo import RococoCluster
from repro.baselines.twopc import TwoPCCluster
from repro.baselines.walter import WalterCluster
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.consistency.checkers import check_external_consistency, check_snapshot_reads
from repro.harness.runner import run_experiment

from tests.conftest import run_client_txn

ALL_CLUSTERS = [TwoPCCluster, WalterCluster, RococoCluster]


def make_cluster(cluster_class, **overrides):
    defaults = dict(n_nodes=3, n_keys=40, replication_degree=2, seed=23)
    if cluster_class is RococoCluster:
        defaults["replication_degree"] = 1
    defaults.update(overrides)
    return cluster_class(ClusterConfig(**defaults), record_history=True)


class TestBasicOperation:
    @pytest.mark.parametrize("cluster_class", [TwoPCCluster, RococoCluster])
    def test_write_then_read_back(self, cluster_class):
        cluster = make_cluster(cluster_class)
        writer = cluster.session(0)
        ok, meta, _ = run_client_txn(cluster, writer, reads=["key-3"], writes={"key-3": 77})
        assert ok is True
        assert meta.committed

        reader = cluster.session(1)
        ok, _meta, values = run_client_txn(cluster, reader, reads=["key-3"], read_only=True)
        assert ok is True
        assert values["key-3"] == 77

    def test_walter_write_read_back_is_psi_stale_but_eventually_visible(self):
        """Walter (PSI) may serve a reader on another node a stale snapshot,
        but a reader co-located with the writer observes the write, and any
        reader observes it once its node's snapshot includes the commit."""
        cluster = make_cluster(WalterCluster)
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 0)
        writer = cluster.session(0)
        ok, _meta, _ = run_client_txn(cluster, writer, reads=[key], writes={key: 77})
        assert ok is True

        local_reader = cluster.session(0)
        ok, _meta, values = run_client_txn(cluster, local_reader, reads=[key], read_only=True)
        assert ok is True
        assert values[key] == 77

        remote_reader = cluster.session(1)
        ok, _meta, values = run_client_txn(cluster, remote_reader, reads=[key], read_only=True)
        assert ok is True
        assert values[key] in (0, 77)  # PSI permits the stale snapshot

    @pytest.mark.parametrize("cluster_class", ALL_CLUSTERS)
    def test_read_your_own_write(self, cluster_class):
        cluster = make_cluster(cluster_class)
        session = cluster.session(0)
        out = {}

        def txn():
            session.begin(read_only=False)
            session.write("key-9", 5)
            out["value"] = yield from session.read("key-9")
            out["ok"] = yield from session.commit()

        cluster.spawn(txn())
        cluster.run()
        assert out["value"] == 5
        assert out["ok"] is True

    @pytest.mark.parametrize("cluster_class", ALL_CLUSTERS)
    def test_read_only_transaction_observes_initial_values(self, cluster_class):
        cluster = make_cluster(cluster_class)
        session = cluster.session(2)
        ok, _meta, values = run_client_txn(
            cluster, session, reads=["key-1", "key-2"], read_only=True
        )
        assert ok
        assert values == {"key-1": 0, "key-2": 0}

    @pytest.mark.parametrize("cluster_class", ALL_CLUSTERS)
    def test_sequential_increments_accumulate(self, cluster_class):
        cluster = make_cluster(cluster_class)
        session = cluster.session(0)
        for _ in range(3):
            ok, _meta, values = run_client_txn(
                cluster, session, reads=["key-5"], writes=None or {}, read_only=True
            )
            # interleave a read-only between updates to exercise both paths
            assert ok
            out = {}

            def incr():
                session.begin(read_only=False)
                value = yield from session.read("key-5")
                session.write("key-5", value + 1)
                out["ok"] = yield from session.commit()

            cluster.spawn(incr())
            cluster.run()
            assert out["ok"] is True
        ok, _meta, values = run_client_txn(cluster, session, reads=["key-5"], read_only=True)
        assert values["key-5"] == 3


class TestTwoPCBaselineSemantics:
    def test_read_only_transactions_can_abort_under_conflict(self):
        """The defining weakness of the 2PC-baseline (paper, Section V)."""
        config = ClusterConfig(
            n_nodes=3, n_keys=8, replication_degree=2, clients_per_node=3, seed=3
        )
        workload = WorkloadConfig(read_only_fraction=0.5)
        result = run_experiment(
            "2pc",
            config,
            workload,
            duration_us=40_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        aborted_read_only = [
            txn for txn in result.cluster.history.aborted if not txn.is_update
        ]
        assert aborted_read_only, "expected read-only aborts under contention"

    def test_history_is_externally_consistent(self):
        config = ClusterConfig(
            n_nodes=3, n_keys=30, replication_degree=2, clients_per_node=2, seed=4
        )
        result = run_experiment(
            "2pc",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=30_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        history = result.cluster.history
        assert len(history.committed) > 30
        assert check_external_consistency(history).ok


class TestWalterSemantics:
    def test_read_only_transactions_never_abort(self):
        config = ClusterConfig(
            n_nodes=4, n_keys=12, replication_degree=2, clients_per_node=3, seed=6
        )
        result = run_experiment(
            "walter",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=40_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        history = result.cluster.history
        assert all(txn.is_update for txn in history.aborted), (
            "Walter read-only transactions must never abort"
        )
        assert len(history.committed_read_only) > 0

    def test_fast_commit_path_used_for_preferred_local_writes(self):
        cluster = make_cluster(WalterCluster)
        # Pick a key whose preferred site is node 0 and write it from node 0.
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 0)
        session = cluster.session(0)
        ok, _meta, _ = run_client_txn(cluster, session, reads=[key], writes={key: 1})
        assert ok
        assert cluster.node(0).counters["fast_commits"] == 1

    def test_slow_commit_path_used_for_remote_writes(self):
        cluster = make_cluster(WalterCluster)
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)
        session = cluster.session(0)
        ok, _meta, _ = run_client_txn(cluster, session, reads=[key], writes={key: 1})
        assert ok
        assert cluster.node(0).counters["slow_commits"] == 1

    def test_reads_only_observe_committed_data(self):
        """PSI permits torn cross-site snapshots but never exposes uncommitted
        writes; the history must contain no read from an unknown writer."""
        config = ClusterConfig(
            n_nodes=3, n_keys=30, replication_degree=2, clients_per_node=2, seed=8
        )
        result = run_experiment(
            "walter",
            config,
            WorkloadConfig(read_only_fraction=0.6),
            duration_us=30_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        check = check_snapshot_reads(result.cluster.history)
        dirty_reads = [v for v in check.violations if "uncommitted" in v]
        assert not dirty_reads


class TestRococoSemantics:
    def test_update_transactions_never_abort(self):
        config = ClusterConfig(
            n_nodes=3, n_keys=10, replication_degree=1, clients_per_node=3, seed=12
        )
        result = run_experiment(
            "rococo",
            config,
            WorkloadConfig(read_only_fraction=0.2),
            duration_us=40_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        history = result.cluster.history
        assert all(not txn.is_update for txn in history.aborted), (
            "ROCOCO update transactions must never abort"
        )
        assert len(history.committed_updates) > 20

    def test_read_only_aborts_increase_with_read_set_size(self):
        def abort_rate(read_set_size: int) -> float:
            config = ClusterConfig(
                n_nodes=3, n_keys=30, replication_degree=1, clients_per_node=3, seed=5
            )
            workload = WorkloadConfig(read_only_fraction=0.8, read_only_txn_keys=read_set_size)
            result = run_experiment(
                "rococo", config, workload, duration_us=40_000, warmup_us=0,
                record_history=True, keep_cluster=True,
            )
            history = result.cluster.history
            read_only_aborts = sum(1 for txn in history.aborted if not txn.is_update)
            attempts = read_only_aborts + len(history.committed_read_only)
            return read_only_aborts / max(attempts, 1)

        assert abort_rate(16) >= abort_rate(2)

    def test_history_is_serializable(self):
        config = ClusterConfig(
            n_nodes=3, n_keys=30, replication_degree=1, clients_per_node=2, seed=9
        )
        result = run_experiment(
            "rococo",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=30_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        from repro.consistency.checkers import check_serializability

        assert check_serializability(result.cluster.history).ok
