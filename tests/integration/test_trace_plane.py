"""The trace plane end to end: passivity, metrics plumbing, the diagnosis.

Three contracts:

* **Passivity / zero overhead** — the recorder never schedules events and
  never draws from the RNG registry, so enabling tracing cannot perturb
  the simulation: fail-free histories with tracing *on* still match the
  committed golden fingerprints (``tests/golden/history_hashes.json``),
  which simultaneously proves the tracing-off path unchanged (the goldens
  predate the trace plane).
* **Plumbing** — ``run_experiment(trace=...)`` populates
  ``ExperimentMetrics.extra`` with the critical-path histograms, the
  metrics properties expose them, the export path writes schema-valid
  Chrome trace JSON, and ``replay --trace`` produces the same artifact
  for a bundle run.
* **The stall diagnosis** — a traced run of the committed SSS
  post-restart stall genome names ``wait.ambiguous_guard`` (the crash
  guard timer waited out against a silent restarted participant) as the
  dominant critical-path span of every stalled transaction.  This is the
  artifact committed under ``docs/traces/`` — see its README for the full
  causal chain — and the test that flips when the defect is fixed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.runner import run_experiment
from repro.search.genome import ScenarioGenome
from repro.search.replay import replay_bundle
from repro.search.scoring import score_genome
from repro.trace import TraceSpec, analyze_trace
from repro.trace.schema import validate_trace

from test_golden_histories import GOLDEN_POINTS, history_fingerprint, load_golden

REPO_ROOT = Path(__file__).resolve().parents[2]
STALL_GENOME_PATH = (
    REPO_ROOT / "benchmarks" / "search_corpus" / "sss-restart-stall-seed1.genome.json"
)
COMMITTED_TRACE = REPO_ROOT / "docs" / "traces" / "sss-restart-stall-seed1.trace.json"


class TestPassivity:
    @pytest.mark.parametrize(
        "protocol,seed,replication_degree",
        GOLDEN_POINTS[:4],
        ids=[f"{p}/seed={s}" for p, s, _ in GOLDEN_POINTS[:4]],
    )
    def test_tracing_on_preserves_golden_histories(self, protocol, seed, replication_degree):
        """Same run as the golden suite, but with full tracing enabled."""
        config = ClusterConfig(
            n_nodes=3,
            n_keys=24,
            replication_degree=replication_degree,
            clients_per_node=2,
            seed=seed,
        )
        result = run_experiment(
            protocol,
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=15_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
            trace=TraceSpec(),
        )
        golden = load_golden()
        key = f"{protocol}/seed={seed}/rf={replication_degree}"
        assert history_fingerprint(result.cluster.history) == golden["fingerprints"][key], (
            "enabling tracing changed the fail-free history — the recorder "
            "must be passive (no events scheduled, no RNG draws)"
        )
        assert result.trace is not None and result.metrics.traced_txns > 0


class TestPlumbing:
    def _traced_run(self, tmp_path=None, **trace_kwargs):
        spec = TraceSpec(**trace_kwargs)
        return run_experiment(
            "sss",
            ClusterConfig(n_nodes=3, n_keys=32, clients_per_node=2, seed=3),
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=6_000,
            warmup_us=0,
            trace=spec,
        )

    def test_metrics_carry_the_attribution_histograms(self):
        result = self._traced_run()
        metrics = result.metrics
        assert metrics.traced_txns == metrics.extra["trace.txns"] > 0
        assert metrics.trace_critical_path_us  # at least one bucket
        assert sum(metrics.trace_dominant.values()) == metrics.traced_txns
        assert all(key.startswith("trace.") is False for key in metrics.trace_dominant)

    def test_disabled_tracing_adds_nothing(self):
        result = run_experiment(
            "sss",
            ClusterConfig(n_nodes=3, n_keys=32, clients_per_node=2, seed=3),
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=6_000,
            warmup_us=0,
        )
        assert result.trace is None
        assert result.metrics.traced_txns == 0
        assert not any(key.startswith("trace.") for key in result.metrics.extra)

    def test_export_path_writes_schema_valid_json(self, tmp_path):
        out = tmp_path / "run.trace.json"
        result = run_experiment(
            "sss",
            ClusterConfig(n_nodes=3, n_keys=32, clients_per_node=2, seed=3),
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=6_000,
            warmup_us=0,
            trace=str(out),
        )
        assert result.trace is not None and out.is_file()
        assert validate_trace(json.loads(out.read_text())) == []

    def test_replay_trace_flag_writes_the_artifact(self, tmp_path):
        genome = ScenarioGenome(
            protocol="sss",
            n_nodes=3,
            n_keys=32,
            clients_per_node=2,
            seed=3,
            duration_us=5_000.0,
            drain_us=5_000.0,
        ).normalize()
        genome_path = tmp_path / "small.genome.json"
        genome_path.write_text(genome.to_json() + "\n")
        out = tmp_path / "small.trace.json"
        code = replay_bundle(genome_path, out=open(os.devnull, "w"), trace_path=out)
        assert code in (0, 2)  # a clean run "does not reproduce" — still traced
        assert validate_trace(json.loads(out.read_text())) == []


class TestStallDiagnosis:
    def test_stall_genome_guard_timeout_dominates(self):
        """The committed diagnosis: stalled txns wait out the crash guard.

        Re-runs the committed SSS-stall genome traced and asserts every
        stalled transaction (unfinished past the run's stall threshold)
        has ``wait.ambiguous_guard`` as its dominant critical-path span —
        the prepare fan-out swallowed by the node-1 crash, resolved only
        by idling out the coarse crash-guard deadline instead of being
        re-driven when the node restarts (the ROADMAP defect).  When that
        defect is fixed this test flips and the ``docs/traces/`` artifact
        must be re-captured.
        """
        genome = ScenarioGenome.from_dict(json.loads(STALL_GENOME_PATH.read_text()))
        outcome = score_genome(genome, trace=TraceSpec())
        assert "stall" in outcome.failures, "the committed stall genome no longer stalls"
        assert outcome.trace is not None

        threshold = outcome.signal["stall_threshold_us"]
        paths = analyze_trace(outcome.trace)
        stalled = [
            path
            for path in paths
            if path.outcome == "unfinished" and path.duration > threshold
        ]
        assert stalled, "stall reproduced but no transaction is stalled past the threshold"
        for path in stalled:
            name, micros = path.dominant
            assert name == "wait.ambiguous_guard", (
                f"{path.txn}: expected the ambiguous-wait guard timeout to dominate, "
                f"got {name} ({micros:.0f}us of {path.duration:.0f}us)"
            )
            assert micros > 0.9 * path.duration, (
                f"{path.txn}: guard wait covers only {micros:.0f}us "
                f"of a {path.duration:.0f}us stall"
            )

    def test_committed_artifact_matches_the_diagnosis(self):
        """The checked-in trace still says what the README claims it says."""
        document = json.loads(COMMITTED_TRACE.read_text())
        assert validate_trace(document) == []
        guard_spans = [
            event
            for event in document["traceEvents"]
            if event.get("name") == "wait.ambiguous_guard" and event["ph"] == "b"
        ]
        assert guard_spans, "committed trace lost its wait.ambiguous_guard spans"
        for span in guard_spans:
            assert span["args"]["outcome"] == "guard-timeout"
            assert span["args"]["round"] == "prepare"
        roots = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
            and event.get("args", {}).get("outcome") == "unfinished"
            and event.get("args", {}).get("dominant") is not None
        ]
        stalled_roots = [event for event in roots if event["dur"] > 10_500.0]
        assert stalled_roots
        assert all(
            event["args"]["dominant"] == "wait.ambiguous_guard" for event in stalled_roots
        )
