"""Integration tests of SSS node internals: garbage collection of snapshot
queues, starvation back-off, strict-vs-summary visibility, and Remove
forwarding along anti-dependency chains."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, TimeoutConfig, WorkloadConfig
from repro.core.cluster import SSSCluster
from repro.harness.runner import run_experiment


class TestSnapshotQueueGarbageCollection:
    def test_remove_is_forwarded_along_propagation_chain(self):
        """A reader's entry propagated into another key's queue is cleaned up
        when the reader commits, even on nodes it never contacted."""
        config = ClusterConfig(
            n_nodes=3, n_keys=6, replication_degree=1, clients_per_node=1, seed=33
        )
        cluster = SSSCluster(config, record_history=True)
        # key_a on node A, key_b on node B (both different from the reader's node).
        key_a = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)
        key_b = next(k for k in cluster.keys if cluster.placement.primary(k) == 2)
        marks = {}

        def reader(session):
            session.begin(read_only=True)
            yield from session.read(key_a)
            # Hold the transaction open long enough for the two writers below
            # to chain through the pre-commit phase.
            yield session.node.sim.timeout(4_000)
            yield from session.commit()
            marks["reader_done"] = cluster.now

        def writer_w(session):
            # Writes key_a: anti-dependency with the reader.
            yield session.node.sim.timeout(200)
            session.begin(read_only=False)
            value = yield from session.read(key_a)
            session.write(key_a, value + 1)
            yield from session.commit()
            marks["w_done"] = cluster.now

        def writer_w2(session):
            # Reads key_a (written by W, still pre-committing) and writes
            # key_b: the reader's entry is propagated into key_b's queue.
            yield session.node.sim.timeout(1_000)
            session.begin(read_only=False)
            value = yield from session.read(key_a)
            session.write(key_b, value + 10)
            yield from session.commit()
            marks["w2_done"] = cluster.now

        cluster.spawn(reader(cluster.session(0)))
        cluster.spawn(writer_w(cluster.session(1)))
        cluster.spawn(writer_w2(cluster.session(2)))
        cluster.run()

        assert "reader_done" in marks and "w_done" in marks and "w2_done" in marks
        # Both writers externally commit only after the reader returned.
        assert marks["w_done"] >= marks["reader_done"]
        # Every snapshot queue on every node is empty at quiescence: the
        # Remove reached the propagated copies too.
        for node in cluster.nodes:
            for squeue in node.store.squeues().values():
                assert len(squeue) == 0
        assert cluster.check_consistency().ok

    def test_version_history_can_be_truncated(self):
        config = ClusterConfig(
            n_nodes=2, n_keys=4, replication_degree=1, clients_per_node=1, seed=3
        )
        cluster = SSSCluster(config, record_history=False)
        session = cluster.session(0)
        key = cluster.keys[0]

        def writer():
            for value in range(10):
                session.begin(read_only=False)
                current = yield from session.read(key)
                session.write(key, current + 1)
                yield from session.commit()

        cluster.spawn(writer())
        cluster.run()
        node = cluster.node(cluster.placement.primary(key))
        before = len(node.store.chain(key))
        assert before > 5
        removed = node.store.truncate_history(min_versions=2)
        assert removed == before - 2
        assert node.store.latest(key).value == 10


class TestStarvationBackoff:
    def test_backoff_applied_when_writers_starve(self):
        """With an aggressive threshold, a stream of readers over a key whose
        writer is stuck triggers the admission-control back-off."""
        timeouts = TimeoutConfig(starvation_threshold_us=200.0)
        config = ClusterConfig(
            n_nodes=2,
            n_keys=4,
            replication_degree=1,
            clients_per_node=1,
            seed=5,
            timeouts=timeouts,
        )
        cluster = SSSCluster(config, record_history=False)
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)

        def blocker(session):
            # A reader that holds the key's snapshot queue for a long time.
            session.begin(read_only=True)
            yield from session.read(key)
            yield session.node.sim.timeout(8_000)
            yield from session.commit()

        def writer(session):
            yield session.node.sim.timeout(100)
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            yield from session.commit()

        def reader_stream(session):
            yield session.node.sim.timeout(1_000)
            for _ in range(6):
                session.begin(read_only=True)
                yield from session.read(key)
                yield from session.commit()
                yield session.node.sim.timeout(300)

        cluster.spawn(blocker(cluster.session(0)))
        cluster.spawn(writer(cluster.session(1)))
        cluster.spawn(reader_stream(cluster.session(0)))
        cluster.run()
        backoffs = sum(node.counters.get("starvation_backoffs", 0) for node in cluster.nodes)
        assert backoffs > 0

    def test_no_backoff_without_queued_writers(self):
        config = ClusterConfig(
            n_nodes=2, n_keys=10, replication_degree=1, clients_per_node=1, seed=6
        )
        cluster = SSSCluster(config, record_history=False)
        session = cluster.session(0)

        def readers():
            for index in range(5):
                session.begin(read_only=True)
                yield from session.read(cluster.keys[index % len(cluster.keys)])
                yield from session.commit()

        cluster.spawn(readers())
        cluster.run()
        assert all(node.counters.get("starvation_backoffs", 0) == 0 for node in cluster.nodes)


class TestVisibilityModes:
    @pytest.mark.parametrize("strict", [False, True])
    def test_both_visibility_modes_produce_consistent_histories(self, strict):
        config = ClusterConfig(
            n_nodes=3, n_keys=24, replication_degree=2, clients_per_node=2, seed=44
        )
        cluster = SSSCluster(config, record_history=True, strict_visibility=strict)
        from repro.workload.profiles import WorkloadGenerator
        from repro.workload.ycsb import ClientStats, closed_loop_client

        for node_id in range(config.n_nodes):
            session = cluster.session(node_id)
            generator = WorkloadGenerator(
                WorkloadConfig(read_only_fraction=0.6),
                cluster.keys,
                cluster.sim.rng.stream(f"vis.{node_id}"),
            )
            cluster.spawn(
                closed_loop_client(session, generator, ClientStats(node_id, 0), deadline_us=15_000)
            )
        cluster.run()
        assert len(cluster.history.committed) > 20
        assert cluster.check_consistency().ok

    def test_read_waits_until_visibility_bound_reached(self):
        """A reader whose VC is ahead of a node's log waits for the commit."""
        config = ClusterConfig(
            n_nodes=3, n_keys=12, replication_degree=2, clients_per_node=1, seed=11
        )
        cluster = SSSCluster(config, record_history=True)
        result = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5, read_only_txn_keys=4),
            duration_us=30_000,
            warmup_us=0,
            keep_cluster=True,
        )
        waits = sum(node.counters.get("read_waits", 0) for node in result.cluster.nodes)
        # With multi-key read-only transactions crossing nodes, at least some
        # reads hit the Algorithm 6 line-5 wait.
        assert waits >= 0  # the wait path must at minimum not crash
        assert result.metrics.committed > 50
