"""The ordered external-commit resolution of the (former) ambiguous zone.

This suite pins the mechanism that replaced the fail-free
timeout-then-exclude heuristic:

* :class:`~repro.core.messages.ExternalStatusQuery` answers definitively —
  committed (with the external-commit timestamp), aborted / torn down,
  unknown (presumed abort), or confirmed in flight;
* a confirmed in-flight writer that a reader is about to *exclude* gets its
  client answer gated behind the reader (answer gates), and the gate is
  released when the reader finishes or restarts;
* a participant that voted and crashed recovers through its durable redo
  log plus the in-doubt resolution at its coordinator — SSS's last 2PC
  in-doubt stall;
* ``fastest_of`` read fan-outs retry in fault mode, so an rf=1 read against
  a crashed replica resumes after the restart instead of stalling (the
  ROADMAP's read-wave stall).
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, FaultPlan, WorkloadConfig
from repro.common.ids import TransactionId
from repro.core.cluster import SSSCluster
from repro.core.metadata import TransactionPhase
from repro.harness.runner import run_experiment


def _cluster(n_nodes=2, rf=1, seed=5, n_keys=8, fault_mode=False):
    cluster = SSSCluster(
        ClusterConfig(
            n_nodes=n_nodes,
            n_keys=n_keys,
            replication_degree=rf,
            clients_per_node=1,
            seed=seed,
        ),
        record_history=True,
    )
    if fault_mode:
        for node in cluster.nodes:
            node.enable_fault_mode()
    return cluster


def _query(cluster, from_node, writers, reader=None, gate_writers=frozenset()):
    """Drive _query_external_status in a process; return its result."""
    out = {}

    def probe():
        result = yield from cluster.nodes[from_node]._query_external_status(
            writers, reader=reader, gate_writers=gate_writers
        )
        out["result"] = result

    cluster.spawn(probe())
    cluster.run()
    return out["result"]


class TestExternalStatusQuery:
    def test_committed_writer_reports_done_with_timestamp(self):
        cluster = _cluster()
        session = cluster.session(0)
        key = cluster.keys[0]
        out = {}

        def txn():
            session.begin(read_only=False)
            yield from session.read(key)
            session.write(key, 7)
            out["ok"] = yield from session.commit()
            out["meta"] = session.last

        cluster.spawn(txn())
        cluster.run()
        assert out["ok"]
        meta = out["meta"]
        confirmed, gated, refused = _query(cluster, 1, [meta.txn_id])
        assert confirmed == set() and gated == set() and refused == set()
        querier = cluster.nodes[1]
        assert querier._externally_done[meta.txn_id] == meta.external_commit_time

    def test_unknown_transaction_is_presumed_aborted(self):
        cluster = _cluster()
        phantom = TransactionId(0, 4_242)
        confirmed, _gated, _refused = _query(cluster, 1, [phantom])
        assert confirmed == set()
        # Done, but with no answer timestamp: a transaction that never
        # answered a client imposes no real-time order on readers.
        assert cluster.nodes[1]._externally_done[phantom] is None

    def test_torn_down_writer_reports_done_without_timestamp(self):
        cluster = _cluster(fault_mode=True)
        coordinator = cluster.nodes[0]
        meta = coordinator.begin_transaction(read_only=False)
        meta.record_write(cluster.keys[0], 1)
        coordinator.crash()
        coordinator.restart()
        assert coordinator.coordinated[meta.txn_id].phase is TransactionPhase.ABORTED
        confirmed, _gated, _refused = _query(cluster, 1, [meta.txn_id])
        assert confirmed == set()
        assert cluster.nodes[1]._externally_done[meta.txn_id] is None

    def test_in_flight_writer_is_confirmed_and_gated(self):
        """A writer stuck in pre-commit is confirmed pending; with a gate
        request its client answer is gated behind the reader, and the gate
        is released by the reader's Remove."""
        cluster = _cluster(n_nodes=2, rf=1, seed=9, n_keys=4)
        writer_node = cluster.nodes[0]
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 0)
        marks = {}

        def reader(session):
            # Hold a snapshot-queue entry under the writer's snapshot so the
            # writer parks in its pre-commit wait.
            session.begin(read_only=True)
            yield from session.read(key)
            yield session.node.sim.timeout(3_000)
            yield from session.commit()
            marks["reader_done"] = cluster.now

        def writer(session):
            yield session.node.sim.timeout(200)
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            ok = yield from session.commit()
            marks["writer_done"] = cluster.now
            marks["writer_ok"] = ok
            marks["writer_meta"] = session.last

        def prober(session):
            yield session.node.sim.timeout(1_000)
            writer_txn = next(
                txn_id
                for txn_id, m in writer_node.coordinated.items()
                if m.is_update
            )
            fake_reader = TransactionId(1, 777)
            result = yield from session.node._query_external_status(
                [writer_txn], reader=fake_reader, gate_writers={writer_txn}
            )
            marks["probe"] = (writer_txn, result)
            # The writer's answer is now gated behind fake_reader; release
            # after a while so the run can finish.
            yield session.node.sim.timeout(2_000)
            marks["writer_done_before_release"] = marks.get("writer_done")
            writer_node._release_answer_gates(fake_reader)

        cluster.spawn(reader(cluster.session(0)))
        cluster.spawn(writer(cluster.session(0)))
        cluster.spawn(prober(cluster.session(1)))
        cluster.run()

        writer_txn, (confirmed, gated, refused) = marks["probe"]
        assert confirmed == {writer_txn}
        assert gated == {writer_txn}
        assert refused == set()
        assert marks["writer_ok"] is True
        # The gate actually held the answer: even though the reader (whose
        # queue entry gated the pre-commit) returned earlier, the writer
        # could not answer until the explicit release.
        assert marks["writer_done_before_release"] is None
        assert marks["writer_done"] >= marks["reader_done"]
        assert not writer_node._answer_gates
        assert cluster.check_consistency().ok


class TestParticipantRedoRecovery:
    def test_voted_then_crashed_participant_recovers_in_doubt_commit(self):
        """SSS's last in-doubt stall: a write replica crashes after voting
        yes but before the Decide arrives.  The durable redo record plus the
        in-doubt status resolution finish the transaction after restart."""
        cluster = _cluster(n_nodes=2, rf=1, seed=21, n_keys=4, fault_mode=True)
        participant = cluster.nodes[1]
        key = next(k for k in cluster.keys if cluster.placement.primary(k) == 1)
        out = {}

        def client(session):
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 41)
            ok = yield from session.commit()
            out["ok"] = ok

        cluster.spawn(client(cluster.session(0)))
        # Step until the participant has force-written its (undecided) redo
        # record, i.e. it voted but has not learned the decision.
        now = 0.0
        while not any(not r.decided for r in participant.redo_log.records()):
            now += 5.0
            cluster.run(until=now)
            assert now < 10_000, "participant never voted"
        participant.crash()
        cluster.run(until=now + 8_000)
        assert "ok" not in out, "commit finished against a crashed replica"
        participant.restart()
        cluster.run(until=now + 40_000)

        assert out.get("ok") is True, "in-doubt transaction never completed"
        assert len(participant.redo_log) == 0
        assert participant.store.latest(key).value == 41
        counters = cluster.total_counters()
        assert (
            counters.get("redo_decides", 0) + counters.get("in_doubt_resolved", 0)
            > 0
        ), "recovery did not go through the redo/in-doubt path"
        assert counters.get("redo_replays", 0) > 0
        assert cluster.check_consistency().ok


class TestReadWaveRetry:
    def test_rf1_read_against_crashed_replica_retries_after_restart(self):
        """The ROADMAP's read-wave stall: with rf=1, a read whose only
        replica is down used to park forever on a reply that never comes.
        The fault-mode retry round re-sends after the restart."""
        config = ClusterConfig(
            n_nodes=2,
            n_keys=8,
            replication_degree=1,
            clients_per_node=2,
            seed=7,
            faults=FaultPlan.parse(["crash node=1 at=20ms for=15ms"]),
        )
        result = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=80_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        metrics = result.metrics
        assert metrics.extra["stalled_clients"] == 0
        assert metrics.extra["quiescence_leaked_writers"] == 0
        assert metrics.committed > 0
        assert result.node_counters.get("read_wave_retries", 0) > 0, (
            "no read wave ever retried — the regression scenario was not hit"
        )
        assert result.cluster.check_consistency().ok

    @pytest.mark.parametrize("protocol", ["2pc", "walter"])
    def test_baseline_rf1_reads_recover_too(self, protocol):
        config = ClusterConfig(
            n_nodes=2,
            n_keys=8,
            replication_degree=1,
            clients_per_node=2,
            seed=7,
            faults=FaultPlan.parse(["crash node=1 at=20ms for=15ms"]),
        )
        result = run_experiment(
            protocol,
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=80_000,
            warmup_us=0,
            keep_cluster=True,
        )
        assert result.metrics.extra["stalled_clients"] == 0
        assert result.metrics.committed > 0
