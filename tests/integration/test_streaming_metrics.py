"""Exact vs streaming metrics: the equivalence the streaming path pins.

``run_experiment(..., streaming_metrics=True)`` must be a drop-in
replacement for the exact aggregation on open-loop runs: identical counts
(committed, aborted, offered, shed), identical time series and phase
tables, exactly equal means, and quantiles within the sketch's pinned
relative-error tolerance.  The exact path stays the oracle; the streaming
path buys bounded memory at heavy traffic.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, CrashFault, FaultPlan, TrafficPlan, WorkloadConfig
from repro.harness.runner import run_experiment

WORKLOAD = WorkloadConfig(read_only_fraction=0.5)

#: Pinned quantile tolerance: the sketch guarantees 1% relative error on
#: the value at the same ceil-rank; 1.5% leaves room for one rank-boundary
#: crossing inside a bucket.
QUANTILE_REL_TOL = 0.015

PHASED_PLAN = TrafficPlan.parse(
    [
        "const rate=2500 until=12ms",
        "burst base=2500 peak=9000 every=6ms for=2ms until=26ms",
        "poisson rate=3500",
    ]
)


def _config(traffic, faults=FaultPlan(), seed=7):
    return ClusterConfig(
        n_nodes=3,
        n_keys=200,
        replication_degree=2,
        clients_per_node=0,
        seed=seed,
        faults=faults,
        traffic=traffic,
    )


def _pair(protocol, config, duration_us=40_000.0, warmup_us=8_000.0):
    exact = run_experiment(
        protocol, config, WORKLOAD, duration_us=duration_us, warmup_us=warmup_us
    )
    streaming = run_experiment(
        protocol,
        config,
        WORKLOAD,
        duration_us=duration_us,
        warmup_us=warmup_us,
        streaming_metrics=True,
    )
    return exact.metrics, streaming.metrics


class TestEquivalence:
    @pytest.mark.parametrize("protocol", ["sss", "2pc"])
    def test_counts_match_exactly(self, protocol):
        exact, streaming = _pair(protocol, _config(PHASED_PLAN))
        assert streaming.committed == exact.committed
        assert streaming.aborted == exact.aborted
        assert streaming.committed_read_only == exact.committed_read_only
        assert streaming.committed_update == exact.committed_update
        for field in ("offered", "dropped", "timed_out", "goodput_tps", "open_loop"):
            assert streaming.extra[field] == exact.extra[field], field

    def test_timeseries_identical(self):
        exact, streaming = _pair("sss", _config(PHASED_PLAN))
        assert exact.timeseries and streaming.timeseries
        assert len(streaming.timeseries) == len(exact.timeseries)
        for exact_win, stream_win in zip(exact.timeseries, streaming.timeseries):
            # Counts and window bounds are exact.
            for field in (
                "start_us",
                "end_us",
                "offered",
                "completed",
                "aborted",
                "dropped",
                "timed_out",
                "offered_tps",
                "goodput_tps",
            ):
                assert stream_win[field] == exact_win[field], (field, exact_win)
            # Per-window percentiles come from per-window sketches.
            for field in ("latency_p50_us", "latency_p99_us"):
                assert stream_win[field] == pytest.approx(
                    exact_win[field], rel=QUANTILE_REL_TOL, abs=0.11
                ), (field, exact_win)

    def test_phase_tables_identical(self):
        exact, streaming = _pair("sss", _config(PHASED_PLAN))
        assert [phase["label"] for phase in streaming.phases] == [
            phase["label"] for phase in exact.phases
        ]
        for exact_phase, stream_phase in zip(exact.phases, streaming.phases):
            for field in ("committed", "aborted", "offered", "shed", "start_us", "end_us"):
                assert stream_phase[field] == exact_phase[field], (field, exact_phase)
            assert stream_phase["throughput_tps"] == pytest.approx(
                exact_phase["throughput_tps"]
            )

    def test_latency_summaries_within_pinned_tolerance(self):
        exact, streaming = _pair("sss", _config(PHASED_PLAN))
        for family in ("latency", "update_latency", "read_only_latency", "internal_latency"):
            exact_summary = getattr(exact, family)
            stream_summary = getattr(streaming, family)
            assert stream_summary.count == exact_summary.count, family
            if exact_summary.count == 0:
                continue
            assert stream_summary.mean_us == pytest.approx(exact_summary.mean_us), family
            for attr in ("p50_us", "p95_us", "p99_us"):
                assert getattr(stream_summary, attr) == pytest.approx(
                    getattr(exact_summary, attr), rel=QUANTILE_REL_TOL
                ), (family, attr)
            assert stream_summary.max_us == pytest.approx(exact_summary.max_us)

    def test_equivalence_holds_under_faults(self):
        faults = FaultPlan(faults=(CrashFault(node=1, at_us=16_000.0, duration_us=6_000.0),))
        exact, streaming = _pair("sss", _config(PHASED_PLAN, faults=faults))
        assert streaming.committed == exact.committed
        assert streaming.aborted == exact.aborted
        assert streaming.extra.get("availability_min") == exact.extra.get("availability_min")
        for exact_phase, stream_phase in zip(exact.phases, streaming.phases):
            assert stream_phase["committed"] == exact_phase["committed"]
            assert stream_phase.get("availability") == exact_phase.get("availability")


class TestClosedLoopStreaming:
    def test_closed_loop_counts_and_latencies_match_exact_path(self):
        # Closed-loop streaming (used by the big sweeps) must agree with the
        # exact closed-loop aggregation: identical outcome counts, means
        # exactly equal, percentiles within the sketch tolerance.
        config = ClusterConfig(
            n_nodes=3, n_keys=100, replication_degree=2, clients_per_node=2, seed=7
        )
        kwargs = dict(duration_us=12_000.0, warmup_us=2_000.0)
        exact = run_experiment("sss", config, WORKLOAD, **kwargs).metrics
        streaming = run_experiment(
            "sss", config, WORKLOAD, streaming_metrics=True, **kwargs
        ).metrics
        assert streaming.committed == exact.committed
        assert streaming.aborted == exact.aborted
        assert streaming.committed_update == exact.committed_update
        assert streaming.committed_read_only == exact.committed_read_only
        assert streaming.latency.count == exact.latency.count
        assert streaming.latency.mean_us == pytest.approx(exact.latency.mean_us)
        assert streaming.latency.p99_us == pytest.approx(
            exact.latency.p99_us, rel=QUANTILE_REL_TOL
        )
        # No time series for closed loop, matching the exact path.
        assert streaming.timeseries == []

    def test_closed_loop_streaming_keeps_no_raw_lists(self):
        config = ClusterConfig(
            n_nodes=3, n_keys=100, replication_degree=2, clients_per_node=2, seed=7
        )
        result = run_experiment(
            "sss",
            config,
            WORKLOAD,
            duration_us=8_000.0,
            warmup_us=0.0,
            streaming_metrics=True,
        )
        assert result.clients
        for stats in result.clients:
            assert stats.latencies_us == []
            assert stats.commit_times_us == []
            assert stats.abort_times_us == []


class TestStreamingGuards:

    def test_streaming_run_keeps_no_raw_latency_lists(self):
        result = run_experiment(
            "sss",
            _config(PHASED_PLAN),
            WORKLOAD,
            duration_us=30_000.0,
            warmup_us=6_000.0,
            streaming_metrics=True,
            keep_cluster=True,
        )
        stats_list = result.clients
        assert stats_list, "open-loop run should expose per-source client stats"
        for stats in stats_list:
            assert stats.latencies_us == []
            assert stats.update_latencies_us == []
            assert stats.read_only_latencies_us == []
            assert stats.commit_times_us == []
            assert stats.abort_times_us == []
            assert stats.committed > 0  # scalar counters still maintained
        assert result.metrics.latency.count > 0
