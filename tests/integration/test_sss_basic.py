"""Basic end-to-end behaviour of the SSS protocol on a small cluster."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import TransactionStateError
from repro.core.cluster import SSSCluster

from tests.conftest import run_client_txn


class TestSingleTransactions:
    def test_read_initial_value(self, small_cluster):
        session = small_cluster.session(0)
        ok, meta, values = run_client_txn(small_cluster, session, reads=["key-1"], read_only=True)
        assert ok is True
        assert values["key-1"] == 0
        assert meta.is_read_only

    def test_update_then_read_back(self, small_cluster):
        writer = small_cluster.session(0)
        ok, meta, _ = run_client_txn(small_cluster, writer, reads=["key-5"], writes={"key-5": 42})
        assert ok is True
        assert meta.committed

        reader = small_cluster.session(1)
        ok, _meta, values = run_client_txn(small_cluster, reader, reads=["key-5"], read_only=True)
        assert ok is True
        assert values["key-5"] == 42

    def test_read_your_own_buffered_write(self, small_cluster):
        session = small_cluster.session(0)
        out = {}

        def txn():
            session.begin(read_only=False)
            session.write("key-3", 99)
            value = yield from session.read("key-3")
            out["value"] = value
            out["ok"] = yield from session.commit()

        small_cluster.spawn(txn())
        small_cluster.run()
        assert out["value"] == 99
        assert out["ok"] is True

    def test_update_transaction_has_commit_vc(self, small_cluster):
        session = small_cluster.session(2)
        ok, meta, _ = run_client_txn(small_cluster, session, reads=["key-9"], writes={"key-9": 7})
        assert ok
        assert meta.commit_vc is not None
        # The commit vector clock carries the same value on every write
        # replica's entry (the xactVN assignment of Algorithm 1).
        replicas = small_cluster.placement.replicas("key-9")
        values = {meta.commit_vc[node] for node in replicas}
        assert len(values) == 1

    def test_read_only_transaction_never_runs_2pc(self, small_cluster):
        session = small_cluster.session(0)
        run_client_txn(small_cluster, session, reads=["key-2", "key-4"], read_only=True)
        counters = small_cluster.total_counters()
        assert counters.get("prepares", 0) == 0
        assert counters.get("read_only_commits", 0) == 1

    def test_external_commit_time_after_internal(self, small_cluster):
        session = small_cluster.session(0)
        ok, meta, _ = run_client_txn(small_cluster, session, reads=["key-7"], writes={"key-7": 1})
        assert ok
        assert meta.internal_commit_time is not None
        assert meta.external_commit_time >= meta.internal_commit_time

    def test_writes_visible_on_every_replica(self, small_cluster):
        session = small_cluster.session(0)
        run_client_txn(small_cluster, session, reads=["key-11"], writes={"key-11": 5})
        for node_id in small_cluster.placement.replicas("key-11"):
            node = small_cluster.node(node_id)
            assert node.store.latest("key-11").value == 5


class TestSessionStateMachine:
    def test_write_in_read_only_transaction_rejected(self, small_cluster):
        session = small_cluster.session(0)
        session.begin(read_only=True)
        with pytest.raises(TransactionStateError):
            session.write("key-1", 1)

    def test_double_begin_rejected(self, small_cluster):
        session = small_cluster.session(0)
        session.begin(read_only=True)
        with pytest.raises(TransactionStateError):
            session.begin(read_only=True)

    def test_commit_without_begin_rejected(self, small_cluster):
        session = small_cluster.session(0)
        with pytest.raises(TransactionStateError):
            # Driving the generator is needed to trigger the check.
            next(session.commit())

    def test_abort_drops_buffered_writes(self, small_cluster):
        session = small_cluster.session(0)
        session.begin(read_only=False)
        session.write("key-20", 123)
        session.abort()
        assert session.last.aborted

        reader = small_cluster.session(1)
        ok, _meta, values = run_client_txn(small_cluster, reader, reads=["key-20"], read_only=True)
        assert ok
        assert values["key-20"] == 0

    def test_abort_of_read_only_cleans_snapshot_queues(self, small_cluster):
        session = small_cluster.session(0)
        out = {}

        def txn():
            session.begin(read_only=True)
            out["value"] = yield from session.read("key-30")
            session.abort()

        small_cluster.spawn(txn())
        small_cluster.run()
        for node_id in small_cluster.placement.replicas("key-30"):
            node = small_cluster.node(node_id)
            squeue = node.store.squeue("key-30")
            assert len(squeue) == 0


class TestValidationAndAborts:
    def test_concurrent_conflicting_updates_one_aborts_or_serializes(self):
        config = ClusterConfig(
            n_nodes=2, n_keys=4, replication_degree=1, clients_per_node=1, seed=3
        )
        cluster = SSSCluster(config, record_history=True)
        outcomes = []

        def txn(session, delta):
            session.begin(read_only=False)
            value = yield from session.read("key-0")
            session.write("key-0", value + delta)
            ok = yield from session.commit()
            outcomes.append(ok)

        cluster.spawn(txn(cluster.session(0), 10))
        cluster.spawn(txn(cluster.session(1), 100))
        cluster.run()

        committed = [ok for ok in outcomes if ok]
        assert len(committed) >= 1
        # The final value must reflect exactly the committed increments in
        # sequence: serial execution of the winners.
        node = cluster.node(cluster.placement.primary("key-0"))
        final = node.store.latest("key-0").value
        if len(committed) == 2:
            assert final == 110
        else:
            assert final in (10, 100)
        assert cluster.check_consistency().ok

    def test_lost_update_prevented(self):
        """Two read-modify-write increments never both read the old value and commit."""
        config = ClusterConfig(
            n_nodes=3, n_keys=10, replication_degree=2, clients_per_node=1, seed=9
        )
        cluster = SSSCluster(config, record_history=True)
        committed = []

        def increment(session):
            session.begin(read_only=False)
            value = yield from session.read("key-1")
            session.write("key-1", value + 1)
            ok = yield from session.commit()
            committed.append(ok)

        for node_id in range(3):
            cluster.spawn(increment(cluster.session(node_id)))
        cluster.run()

        node = cluster.node(cluster.placement.primary("key-1"))
        final = node.store.latest("key-1").value
        assert final == sum(1 for ok in committed if ok)


class TestSnapshotQueueLifecycle:
    def test_remove_cleans_all_replicas(self, small_cluster):
        session = small_cluster.session(0)
        run_client_txn(small_cluster, session, reads=["key-40", "key-41"], read_only=True)
        for key in ("key-40", "key-41"):
            for node_id in small_cluster.placement.replicas(key):
                assert len(small_cluster.node(node_id).store.squeue(key)) == 0

    def test_no_writers_left_queued_after_quiescence(self, small_cluster):
        sessions = [small_cluster.session(i % 3) for i in range(6)]

        def update(session, key):
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            yield from session.commit()

        def read(session, keys):
            session.begin(read_only=True)
            for key in keys:
                yield from session.read(key)
            yield from session.commit()

        for index, session in enumerate(sessions):
            key = f"key-{index % 4}"
            if index % 2:
                small_cluster.spawn(update(session, key))
            else:
                small_cluster.spawn(read(session, [key, f"key-{(index + 1) % 4}"]))
        small_cluster.run()
        for node in small_cluster.nodes:
            assert node.queued_writer_count() == 0
            assert len(node.commit_queue) == 0
        assert small_cluster.check_consistency().ok
