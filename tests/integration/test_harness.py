"""Integration tests for the experiment harness and fault handling."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.core.cluster import SSSCluster
from repro.harness.cluster import PROTOCOLS, build_cluster
from repro.harness.experiments import ALL_EXPERIMENTS, FIGURE_3, benchmark_scale_for
from repro.harness.runner import (
    average_throughput_ktps,
    find_saturation_throughput,
    run_experiment,
    run_trials,
)


def small_config(**overrides):
    defaults = dict(n_nodes=3, n_keys=60, replication_degree=2, clients_per_node=2, seed=7)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestRunner:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_run_experiment_produces_metrics(self, protocol):
        config = small_config(replication_degree=1 if protocol == "rococo" else 2)
        result = run_experiment(
            protocol,
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=20_000,
            warmup_us=5_000,
        )
        metrics = result.metrics
        assert metrics.committed > 0
        assert metrics.throughput_ktps > 0
        assert metrics.latency.count == metrics.committed
        assert 0.0 <= metrics.abort_rate < 1.0

    def test_warmup_excluded_from_measurements(self):
        config = small_config()
        workload = WorkloadConfig(read_only_fraction=0.5)
        with_warmup = run_experiment("sss", config, workload, duration_us=30_000, warmup_us=15_000)
        without_warmup = run_experiment("sss", config, workload, duration_us=30_000, warmup_us=0)
        assert with_warmup.metrics.committed < without_warmup.metrics.committed

    def test_run_trials_uses_distinct_seeds(self):
        config = small_config()
        results = run_trials(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            trials=2,
            duration_us=15_000,
            warmup_us=0,
        )
        assert len(results) == 2
        assert results[0].config.seed != results[1].config.seed
        assert average_throughput_ktps(results) > 0

    def test_find_saturation_picks_best_client_count(self):
        config = small_config()
        best = find_saturation_throughput(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            client_counts=(1, 4),
            duration_us=15_000,
            warmup_us=0,
        )
        assert best.config.clients_per_node in (1, 4)
        assert "saturation_clients_per_node" in best.metrics.extra

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_cluster("spanner", config=small_config())

    def test_build_cluster_types(self):
        for name, cluster_class in PROTOCOLS.items():
            cluster = build_cluster(
                name,
                config=small_config(replication_degree=1 if name == "rococo" else 2),
            )
            assert isinstance(cluster, cluster_class)
            assert cluster.history is None  # history off by default for benchmarks

    def test_think_time_lowers_throughput(self):
        config = small_config()
        busy = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5, think_time_us=0.0),
            duration_us=20_000,
            warmup_us=0,
        )
        idle = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5, think_time_us=2_000.0),
            duration_us=20_000,
            warmup_us=0,
        )
        assert idle.metrics.committed < busy.metrics.committed


class TestExperimentDefinitions:
    def test_every_figure_is_defined(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig3",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
        }

    def test_definitions_produce_valid_configs(self):
        for definition in ALL_EXPERIMENTS.values():
            for n_nodes in definition.node_counts:
                for n_keys in definition.key_counts:
                    definition.cluster(n_nodes, n_keys).validate()
            for fraction in definition.read_only_fractions:
                definition.workload(fraction).validate()

    def test_fig3_matches_paper_parameters(self):
        assert FIGURE_3.node_counts == (5, 10, 15, 20)
        assert FIGURE_3.key_counts == (5_000, 10_000)
        assert FIGURE_3.replication_degree == 2
        assert FIGURE_3.clients_per_node == 10

    def test_benchmark_scale_shrinks_latency_figures(self):
        scale = benchmark_scale_for(ALL_EXPERIMENTS["fig4b"])
        assert len(scale.node_counts) == 1


class TestFaultTolerance:
    def test_crash_of_uninvolved_node_does_not_block_transactions(self):
        config = ClusterConfig(
            n_nodes=4, n_keys=40, replication_degree=1, clients_per_node=1, seed=19
        )
        cluster = SSSCluster(config, record_history=True)
        # Crash a node and run transactions that never touch its keys.
        crashed = 3
        cluster.network.crash(crashed)
        safe_keys = [
            key
            for key in cluster.keys
            if crashed not in cluster.placement.replicas(key)
        ][:4]
        outcomes = []

        def client(session, key):
            session.begin(read_only=False)
            value = yield from session.read(key)
            session.write(key, value + 1)
            ok = yield from session.commit()
            outcomes.append(ok)

        for index, key in enumerate(safe_keys):
            cluster.spawn(client(cluster.session(index % 3), key))
        cluster.run(until=200_000)
        assert outcomes and all(outcomes)

    def test_transactions_touching_crashed_node_abort_by_timeout(self):
        config = ClusterConfig(
            n_nodes=3, n_keys=30, replication_degree=1, clients_per_node=1, seed=20
        )
        cluster = SSSCluster(config, record_history=True)
        crashed = 2
        cluster.network.crash(crashed)
        key = next(key for key in cluster.keys if cluster.placement.primary(key) == crashed)
        outcomes = []

        def client(session):
            session.begin(read_only=False)
            session.write(key, 1)
            ok = yield from session.commit()
            outcomes.append(ok)

        cluster.spawn(client(cluster.session(0)))
        cluster.run(until=500_000)
        assert outcomes == [False]
