"""Smoke tests for the example programs.

Each example must run to completion on a scaled-down configuration; the
quickstart is executed as-is (it is already small).  These tests guard the
documented entry points against API drift.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "external-consistency" in output
    assert "PASS" in output
    assert "committed" in output


def test_examples_exist_and_are_importable():
    expected = {
        "quickstart.py",
        "document_sharing.py",
        "read_dominated_analytics.py",
        "consistency_audit.py",
        "protocol_comparison.py",
    }
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present
    for name in expected:
        source = (EXAMPLES_DIR / name).read_text()
        compile(source, name, "exec")  # syntax check without executing


def test_document_sharing_single_trial(monkeypatch):
    """Run one trial of the document-sharing scenario for both protocols."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import document_sharing  # type: ignore[import-not-found]
    finally:
        sys.path.pop(0)
    keys = [document_sharing.DOCUMENT] + [f"other-{i}" for i in range(7)]
    sss_outcome = document_sharing.run_trial("sss", seed=5, keys=keys)
    assert sss_outcome["c2_saw_c1"] is True
    walter_outcome = document_sharing.run_trial("walter", seed=5, keys=keys)
    assert walter_outcome["c2_saw_c1"] in (True, False)
