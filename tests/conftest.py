"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.core.cluster import SSSCluster
from repro.sim.engine import Simulation

# Property tests run a fixed, reproducible example set by default: tier-1 CI
# must be deterministic (no example-roulette flakes), and any new
# counterexample found by widening the search should land as a pinned
# regression test rather than an intermittent CI failure.
#
# The nightly stress workflow selects the ``stress`` profile instead
# (``REPRO_HYPOTHESIS_PROFILE=stress``): randomized example selection, a
# larger default example budget, and printed reproduction blobs so a nightly
# counterexample can be pinned the next morning.  Tests that set their own
# ``max_examples`` scale it by ``REPRO_STRESS_SCALE`` (read in the test
# modules themselves so collection also works under the bare ``pytest``
# entrypoint).
hypothesis_settings.register_profile("deterministic", derandomize=True)
hypothesis_settings.register_profile("stress", derandomize=False, max_examples=400, print_blob=True)
hypothesis_settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "deterministic"))


@pytest.fixture
def sim() -> Simulation:
    """A fresh deterministic simulation."""
    return Simulation(seed=42)


@pytest.fixture
def small_config() -> ClusterConfig:
    """A small cluster configuration used by integration tests."""
    return ClusterConfig(
        n_nodes=3,
        n_keys=60,
        replication_degree=2,
        clients_per_node=2,
        seed=13,
    )


@pytest.fixture
def small_cluster(small_config) -> SSSCluster:
    """A small SSS cluster with history recording enabled."""
    return SSSCluster(small_config, record_history=True)


@pytest.fixture
def read_heavy_workload() -> WorkloadConfig:
    return WorkloadConfig(read_only_fraction=0.8)


def run_client_txn(cluster, session, *, reads=(), writes=(), read_only=False):
    """Helper: run one transaction to completion and return (ok, meta, values).

    ``writes`` is a mapping of key to value; ``reads`` an iterable of keys.
    The helper spawns a process and runs the cluster to quiescence, so it is
    only suitable for tests that drive transactions one at a time.
    """
    out = {}

    def txn():
        session.begin(read_only=read_only)
        values = {}
        for key in reads:
            values[key] = yield from session.read(key)
        for key, value in dict(writes).items():
            session.write(key, value)
        ok = yield from session.commit()
        out["ok"] = ok
        out["values"] = values
        out["meta"] = session.last

    cluster.spawn(txn())
    cluster.run()
    return out["ok"], out["meta"], out["values"]
