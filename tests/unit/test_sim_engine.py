"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.resources import SimLock, Store


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        fired = []

        def proc():
            yield sim.timeout(25)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [25.0]

    def test_timeouts_fire_in_order(self, sim):
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(30, "late"))
        sim.process(proc(10, "early"))
        sim.process(proc(20, "middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_equal_timestamps_preserve_creation_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(10)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_early(self, sim):
        fired = []

        def proc():
            yield sim.timeout(100)
            fired.append("late")

        sim.process(proc())
        end = sim.run(until=50)
        assert end == 50
        assert fired == []
        sim.run()
        assert fired == ["late"]

    def test_run_returns_final_time(self, sim):
        sim.process(iter([]) and (sim.timeout(5) for _ in ()))  # no-op
        def proc():
            yield sim.timeout(42)
        sim.process(proc())
        assert sim.run() == 42

    def test_timeout_value_passed_to_process(self, sim):
        seen = []

        def proc():
            value = yield sim.timeout(5, value="payload")
            seen.append(value)

        sim.process(proc())
        sim.run()
        assert seen == ["payload"]


class TestEventsAndProcesses:
    def test_event_succeed_resumes_waiter(self, sim):
        event = sim.event()
        results = []

        def waiter():
            value = yield event
            results.append((sim.now, value))

        def trigger():
            yield sim.timeout(7)
            event.succeed("done")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert results == [(7.0, "done")]

    def test_event_fail_raises_in_waiter(self, sim):
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        def trigger():
            yield sim.timeout(1)
            event.fail(RuntimeError("boom"))

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert caught == ["boom"]

    def test_double_succeed_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_process_return_value_is_event_value(self, sim):
        def child():
            yield sim.timeout(3)
            return 99

        results = []

        def parent():
            value = yield sim.process(child())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [99]

    def test_uncaught_process_exception_surfaces(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("protocol bug")

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_kill(self, sim):
        progress = []

        def worker():
            try:
                while True:
                    yield sim.timeout(10)
                    progress.append(sim.now)
            finally:
                progress.append("cleaned-up")

        proc = sim.process(worker())

        def killer():
            yield sim.timeout(35)
            proc.kill()

        sim.process(killer())
        sim.run()
        assert progress == [10.0, 20.0, 30.0, "cleaned-up"]
        assert not proc.is_alive

    def test_any_of_fires_on_first(self, sim):
        results = []

        def proc():
            first = sim.timeout(5, value="fast")
            second = sim.timeout(50, value="slow")
            yield sim.any_of([first, second])
            results.append((first.triggered, second.triggered, sim.now))

        sim.process(proc())
        sim.run()
        assert results[0][0] is True
        assert results[0][1] is False
        assert results[0][2] == 5.0

    def test_all_of_waits_for_every_child(self, sim):
        results = []

        def proc():
            events = [sim.timeout(5), sim.timeout(20), sim.timeout(10)]
            yield sim.all_of(events)
            results.append(sim.now)

        sim.process(proc())
        sim.run()
        assert results == [20.0]

    def test_condition_fires_when_predicate_becomes_true(self, sim):
        state = {"value": 0}
        signal = sim.signal("state")
        woke = []

        def waiter():
            yield sim.condition(lambda: state["value"] >= 2, signal)
            woke.append(sim.now)

        def bumper():
            for _ in range(3):
                yield sim.timeout(10)
                state["value"] += 1
                signal.notify()

        sim.process(waiter())
        sim.process(bumper())
        sim.run()
        assert woke == [20.0]

    def test_condition_already_true_fires_immediately(self, sim):
        signal = sim.signal()
        woke = []

        def waiter():
            yield sim.condition(lambda: True, signal)
            woke.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert woke == [0.0]

    def test_determinism_across_runs(self):
        def run_once():
            sim = Simulation(seed=5)
            log = []

            def proc(name):
                for _ in range(3):
                    delay = sim.rng.stream(name).uniform(1, 10)
                    yield sim.timeout(delay)
                    log.append((name, round(sim.now, 6)))

            sim.process(proc("a"))
            sim.process(proc("b"))
            sim.run()
            return log

        assert run_once() == run_once()


class TestResources:
    def test_simlock_mutual_exclusion(self, sim):
        lock = SimLock(sim)
        order = []

        def worker(tag, hold):
            yield lock.acquire()
            order.append(("acquired", tag, sim.now))
            yield sim.timeout(hold)
            lock.release()

        sim.process(worker("a", 10))
        sim.process(worker("b", 10))
        sim.run()
        assert order == [("acquired", "a", 0.0), ("acquired", "b", 10.0)]

    def test_simlock_release_without_acquire_rejected(self, sim):
        lock = SimLock(sim)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_store_fifo_order(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        def producer():
            for item in ("x", "y", "z"):
                yield sim.timeout(5)
                store.put(item)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert received == ["x", "y", "z"]

    def test_store_priority_order(self, sim):
        store = Store(sim)
        store.put("bulk", priority=3)
        store.put("urgent", priority=0)
        store.put("normal", priority=1)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(consumer())
        sim.run()
        assert received == ["urgent", "normal", "bulk"]
