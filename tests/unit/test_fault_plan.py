"""Unit tests for the declarative fault plan and the fault-plane primitives.

Covers the :class:`~repro.common.config.FaultPlan` grammar (compact strings,
dicts, objects), its validation, the phase-window computation the
availability metrics build on, and the low-level crash/partition semantics
of the transport and the node runtime.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.config import (
    ClusterConfig,
    CrashFault,
    FaultPlan,
    NetworkConfig,
    PartitionFault,
    SlowLinkFault,
    parse_time_us,
)
from repro.common.errors import ConfigurationError, NodeCrashedError
from repro.network.message import Message, MessagePriority
from repro.network.node import NetworkedNode
from repro.network.transport import Network
from repro.sim.engine import Simulation
from repro.sim.resources import Store
from repro.storage.locks import LockMode, LockTable
from repro.common.ids import TransactionId


class TestTimeParsing:
    @pytest.mark.parametrize(
        "literal,expected",
        [
            ("250", 250.0),
            (250, 250.0),
            (2.5, 2.5),
            ("500us", 500.0),
            ("30ms", 30_000.0),
            ("1.5s", 1_500_000.0),
            (" 20MS ", 20_000.0),
        ],
    )
    def test_literals(self, literal, expected):
        assert parse_time_us(literal) == expected

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_time_us("soon")


class TestFaultPlanParsing:
    def test_crash_string(self):
        plan = FaultPlan.parse(["crash node=2 at=30ms for=20ms"])
        (fault,) = plan.faults
        assert fault == CrashFault(node=2, at_us=30_000.0, duration_us=20_000.0)

    def test_crash_without_restart(self):
        (fault,) = FaultPlan.parse(["crash node=0 at=5ms"]).faults
        assert fault.duration_us is None

    def test_partition_string(self):
        (fault,) = FaultPlan.parse(["partition groups=0,1|2,3 at=10ms for=20ms mode=drop"]).faults
        assert fault == PartitionFault(
            groups=((0, 1), (2, 3)), at_us=10_000.0, duration_us=20_000.0, mode="drop"
        )

    def test_slowlink_string(self):
        (fault,) = FaultPlan.parse(
            ["slowlink src=0 dst=1 at=5ms for=10ms factor=8 extra=200us"]
        ).faults
        assert fault == SlowLinkFault(
            src=0,
            dst=1,
            at_us=5_000.0,
            duration_us=10_000.0,
            factor=8.0,
            extra_us=200.0,
            bidirectional=True,
        )

    def test_dict_and_object_specs(self):
        crash = CrashFault(node=1, at_us=10.0, duration_us=5.0)
        plan = FaultPlan.parse([crash, {"kind": "crash", "node": 0, "at": "1ms", "for": "1ms"}])
        assert plan.faults[0] is crash
        assert plan.faults[1].node == 0

    @pytest.mark.parametrize(
        "spec",
        [
            "explode node=1 at=1ms",
            "crash node=1 at=1ms wat=2",
            "crash at=1ms",
            "partition groups=0|1 at=1ms",  # missing window
            "slowlink src=0 dst=1 at=1ms",  # missing window
            "",
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises((ConfigurationError, KeyError)):
            FaultPlan.parse([spec])

    def test_plan_is_picklable_and_hashable(self):
        plan = FaultPlan.parse(
            ["crash node=1 at=1ms for=1ms", "partition groups=0|1,2 at=3ms for=1ms"]
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        hash(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.parse(["crash node=0 at=1ms"])


class TestFaultPlanValidation:
    def test_cluster_config_validates_plan(self):
        config = ClusterConfig(n_nodes=3, faults=FaultPlan.parse(["crash node=7 at=1ms"]))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_partition_groups_must_be_disjoint(self):
        plan = FaultPlan.parse(["partition groups=0,1|1,2 at=1ms for=1ms"])
        with pytest.raises(ConfigurationError):
            plan.validate(3)

    def test_overlapping_partitions_rejected(self):
        plan = FaultPlan.parse(
            [
                "partition groups=0|1,2 at=1ms for=5ms",
                "partition groups=0,1|2 at=3ms for=5ms",
            ]
        )
        with pytest.raises(ConfigurationError):
            plan.validate(3)

    def test_slowlink_must_degrade(self):
        plan = FaultPlan.parse(["slowlink src=0 dst=1 at=1ms for=1ms factor=0.5"])
        with pytest.raises(ConfigurationError):
            plan.validate(2)


class TestPhaseWindows:
    def test_empty_plan_has_no_phases(self):
        assert FaultPlan().phases(100.0) == []

    def test_crash_with_restart_produces_three_phases(self):
        plan = FaultPlan.parse(["crash node=0 at=30ms for=20ms"])
        phases = plan.phases(100_000.0)
        assert [(label.split(":")[1], start, end) for label, start, end in phases] == [
            ("fail-free", 0.0, 30_000.0),
            ("crash", 30_000.0, 50_000.0),
            ("fail-free", 50_000.0, 100_000.0),
        ]

    def test_crash_forever_extends_to_horizon(self):
        plan = FaultPlan.parse(["crash node=0 at=30ms"])
        phases = plan.phases(100_000.0)
        assert phases[-1][0].endswith("crash")
        assert phases[-1][2] == 100_000.0

    def test_overlapping_kinds_are_joined_in_label(self):
        plan = FaultPlan.parse(
            [
                "crash node=0 at=10ms for=30ms",
                "slowlink src=0 dst=1 at=20ms for=30ms factor=2",
            ]
        )
        labels = [label.split(":")[1] for label, _s, _e in plan.phases(60_000.0)]
        assert labels == ["fail-free", "crash", "crash+slowlink", "slowlink", "fail-free"]


# ----------------------------------------------------------------------
# Low-level fault primitives
# ----------------------------------------------------------------------
class Ping(Message):
    __slots__ = ("payload",)
    priority = MessagePriority.CONTROL
    base_size = 16

    def __init__(self, payload=None):
        Message.__init__(self)
        self.payload = payload

    def size_estimate(self, codec=None, peer=None) -> int:
        return 16


class Recorder(NetworkedNode):
    """Node that records every Ping it handles."""

    def __init__(self, sim, network, node_id):
        super().__init__(sim, network, node_id)
        self.received = []
        self.register_handler(Ping, self.on_ping)

    def on_ping(self, message: Ping) -> None:
        self.received.append((self.sim.now, message.payload))


def _pair(n_nodes: int = 2):
    sim = Simulation(seed=5)
    network = Network(sim, config=NetworkConfig(bandwidth_msgs_per_us=0.0))
    nodes = [Recorder(sim, network, i) for i in range(n_nodes)]
    return sim, network, nodes


class TestTransportFaults:
    def test_buffered_partition_releases_on_heal(self):
        sim, network, nodes = _pair()
        network.partition([(0,), (1,)])
        network.send(0, 1, Ping("held"))
        sim.run(until=1_000.0)
        assert nodes[1].received == []
        assert network.stats.held == 1
        network.heal_partition()
        sim.run(until=2_000.0)
        assert [p for _t, p in nodes[1].received] == ["held"]
        assert network.stats.released == 1
        # Delivered at the heal instant or later, never before.
        assert nodes[1].received[0][0] >= 1_000.0

    def test_drop_partition_loses_messages(self):
        sim, network, nodes = _pair()
        network.partition([(0,), (1,)], mode="drop")
        network.send(0, 1, Ping("lost"))
        network.heal_partition()
        sim.run(until=1_000.0)
        assert nodes[1].received == []
        assert network.stats.total_dropped == 1

    def test_partition_keeps_same_side_traffic(self):
        sim, network, nodes = _pair(3)
        network.partition([(0, 1), (2,)])
        network.send(0, 1, Ping("same-side"))
        sim.run(until=1_000.0)
        assert [p for _t, p in nodes[1].received] == ["same-side"]

    def test_unlisted_nodes_form_one_group(self):
        sim, network, nodes = _pair(3)
        # Only node 0 is named: nodes 1 and 2 stay connected to each other.
        network.partition([(0,)])
        assert network.is_partitioned(0, 1)
        assert network.is_partitioned(0, 2)
        assert not network.is_partitioned(1, 2)

    def test_degraded_link_inflates_latency(self):
        sim, network, nodes = _pair()
        network.send(0, 1, Ping("fast"))
        sim.run(until=500.0)
        baseline = nodes[1].received[-1][0]
        network.degrade_link(0, 1, factor=10.0, extra_us=1_000.0)
        network.send(0, 1, Ping("slow"))
        sim.run(until=5_000.0)
        slow = nodes[1].received[-1][0] - 500.0
        assert slow > baseline + 1_000.0 - 500.0  # extra_us alone dominates
        network.restore_link(0, 1)
        network.send(0, 1, Ping("fast-again"))
        before = sim.now
        sim.run(until=10_000.0)
        assert nodes[1].received[-1][0] - before < 1_000.0


class TestNodeCrashPrimitives:
    def test_store_clear_counts_dropped(self):
        sim = Simulation()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert store.clear() == 2
        assert len(store) == 0

    def test_crashed_node_fails_requests_fast(self):
        sim, network, nodes = _pair()
        nodes[0].enable_fault_mode()
        nodes[0].crashed = True
        event = nodes[0].request(1, Ping("never"))
        assert event.triggered
        with pytest.raises(NodeCrashedError):
            _ = event.value

    def test_crashed_destination_drops_traffic(self):
        sim, network, nodes = _pair()
        network.crash(1)
        network.send(0, 1, Ping("into-the-void"))
        sim.run(until=1_000.0)
        assert nodes[1].received == []
        assert network.stats.total_dropped == 1
        network.recover(1)
        network.send(0, 1, Ping("alive"))
        sim.run(until=2_000.0)
        assert [p for _t, p in nodes[1].received] == ["alive"]

    def test_epoch_guard_kills_handler_after_crash(self):
        sim, network, nodes = _pair()
        node = nodes[0]
        node.enable_fault_mode()
        progress = []

        def slow_handler(message):
            progress.append("started")
            yield 500.0
            progress.append("finished")

        node.register_handler(Ping, slow_handler)
        network.send(1, 0, Ping("work"))
        sim.run(until=100.0)
        assert progress == ["started"]
        node._epoch += 1  # what crash() does
        sim.run(until=5_000.0)
        assert progress == ["started"]  # never finished: epoch moved

    def test_lock_table_reset_except_keeps_prepared(self):
        sim = Simulation()
        locks = LockTable(sim)
        prepared = TransactionId(node=0, seq=1)
        volatile = TransactionId(node=0, seq=2)
        assert locks.try_acquire(prepared, "a", LockMode.EXCLUSIVE)
        assert locks.try_acquire(volatile, "b", LockMode.EXCLUSIVE)
        locks.reset_except({prepared})
        assert locks.holds(prepared, "a")
        assert not locks.holds(volatile, "b")
