"""Unit tests for workload generation, key placement and configuration."""

from __future__ import annotations

import random

import pytest

from repro.common.config import ClusterConfig, NetworkConfig, TimeoutConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.ids import ClientId, TransactionId, TxnIdGenerator
from repro.replication.placement import KeyPlacement, hash_placement
from repro.workload.distributions import (
    LocalityKeySelector,
    UniformKeySelector,
    ZipfianKeySelector,
    make_key_selector,
)
from repro.workload.profiles import WorkloadGenerator

KEYS = [f"key-{index}" for index in range(100)]


class TestIdentifiers:
    def test_transaction_ids_unique_and_ordered(self):
        generator = TxnIdGenerator(node=3)
        first, second = generator.next_id(), generator.next_id()
        assert first != second
        assert first < second
        assert first.node == 3

    def test_transaction_id_hashable(self):
        assert len({TransactionId(0, 1), TransactionId(0, 1), TransactionId(1, 1)}) == 2

    def test_client_id_ordering(self):
        assert ClientId(0, 1) < ClientId(1, 0)


class TestConfigValidation:
    def test_default_configs_valid(self):
        ClusterConfig().validate()
        WorkloadConfig().validate()

    def test_replication_degree_above_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_nodes=3, replication_degree=4).validate()

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_nodes=0).validate()

    def test_bad_read_only_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(read_only_fraction=1.5).validate()

    def test_bad_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(key_distribution="pareto").validate()

    def test_bad_locality_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(locality_fraction=-0.1).validate()

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(base_latency_us=-1).validate()

    def test_bad_backoff_window_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeoutConfig(backoff_initial_us=100, backoff_max_us=10).validate()


class TestPlacement:
    def test_replica_count_and_distinctness(self):
        placement = KeyPlacement(n_nodes=5, replication_degree=3, keys=KEYS)
        for key in KEYS:
            replicas = placement.replicas(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert all(0 <= node < 5 for node in replicas)

    def test_placement_is_deterministic(self):
        a = KeyPlacement(n_nodes=7, replication_degree=2)
        b = KeyPlacement(n_nodes=7, replication_degree=2)
        for key in KEYS:
            assert a.replicas(key) == b.replicas(key)

    def test_primary_is_first_replica(self):
        placement = KeyPlacement(n_nodes=4, replication_degree=2)
        assert placement.primary("k") == placement.replicas("k")[0]

    def test_replicas_of_union(self):
        placement = KeyPlacement(n_nodes=6, replication_degree=2)
        union = placement.replicas_of(["a", "b", "c"])
        expected = set()
        for key in ("a", "b", "c"):
            expected.update(placement.replicas(key))
        assert set(union) == expected
        assert list(union) == sorted(union)

    def test_local_keys_cover_every_replica(self):
        placement = KeyPlacement(n_nodes=4, replication_degree=2, keys=KEYS)
        for node in range(4):
            for key in placement.local_keys(node):
                assert placement.is_replica(node, key)

    def test_load_is_roughly_balanced(self):
        placement = KeyPlacement(n_nodes=5, replication_degree=2, keys=KEYS)
        loads = placement.load_per_node()
        assert sum(loads.values()) == len(KEYS) * 2
        assert placement.balance_ratio() < 2.5

    def test_invalid_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyPlacement(n_nodes=2, replication_degree=3)

    def test_hash_placement_wraps_around(self):
        replicas = hash_placement("some-key", n_nodes=3, replication_degree=3)
        assert sorted(replicas) == [0, 1, 2]


class TestKeySelectors:
    def test_uniform_selects_distinct_keys(self):
        selector = UniformKeySelector(KEYS)
        rng = random.Random(1)
        chosen = selector.select(rng, 10)
        assert len(chosen) == len(set(chosen)) == 10
        assert all(key in KEYS for key in chosen)

    def test_uniform_rejects_oversized_request(self):
        selector = UniformKeySelector(KEYS[:3])
        with pytest.raises(ConfigurationError):
            selector.select(random.Random(1), 10)

    def test_zipfian_prefers_low_ranks(self):
        selector = ZipfianKeySelector(KEYS, theta=0.9)
        rng = random.Random(7)
        counts = {key: 0 for key in KEYS}
        for _ in range(3000):
            for key in selector.select(rng, 1):
                counts[key] += 1
        top_10 = sum(counts[key] for key in KEYS[:10])
        bottom_10 = sum(counts[key] for key in KEYS[-10:])
        assert top_10 > bottom_10 * 2

    def test_zipfian_invalid_theta(self):
        with pytest.raises(ConfigurationError):
            ZipfianKeySelector(KEYS, theta=1.5)

    def test_locality_selector_prefers_local_keys(self):
        local = KEYS[:10]
        selector = LocalityKeySelector(KEYS, local, locality_fraction=0.9)
        rng = random.Random(11)
        hits = 0
        for _ in range(1000):
            key = selector.select(rng, 1)[0]
            if key in local:
                hits += 1
        assert hits > 700

    def test_make_key_selector_dispatch(self):
        placement = KeyPlacement(n_nodes=3, replication_degree=2, keys=KEYS)
        assert isinstance(make_key_selector(WorkloadConfig(), KEYS), UniformKeySelector)
        assert isinstance(
            make_key_selector(WorkloadConfig(key_distribution="zipfian"), KEYS),
            ZipfianKeySelector,
        )
        assert isinstance(
            make_key_selector(WorkloadConfig(locality_fraction=0.5), KEYS, placement, node_id=1),
            LocalityKeySelector,
        )

    def test_make_key_selector_locality_requires_placement(self):
        with pytest.raises(ConfigurationError):
            make_key_selector(WorkloadConfig(locality_fraction=0.5), KEYS)


class TestWorkloadGenerator:
    def test_read_only_fraction_respected(self):
        generator = WorkloadGenerator(
            WorkloadConfig(read_only_fraction=0.8), KEYS, random.Random(3)
        )
        specs = generator.specs(2000)
        read_only = sum(1 for spec in specs if spec.read_only)
        assert 0.74 <= read_only / len(specs) <= 0.86

    def test_update_profile_reads_and_writes_same_keys(self):
        generator = WorkloadGenerator(
            WorkloadConfig(read_only_fraction=0.0, update_txn_keys=2),
            KEYS,
            random.Random(5),
        )
        spec = generator.next_spec()
        assert not spec.read_only
        assert spec.read_keys == spec.write_keys
        assert len(spec.read_keys) == 2
        assert spec.size() == 2

    def test_read_only_profile_size(self):
        generator = WorkloadGenerator(
            WorkloadConfig(read_only_fraction=1.0, read_only_txn_keys=16),
            KEYS,
            random.Random(5),
        )
        spec = generator.next_spec()
        assert spec.read_only
        assert len(spec.read_keys) == 16
        assert spec.write_keys == ()

    def test_generator_counts_specs(self):
        generator = WorkloadGenerator(WorkloadConfig(), KEYS, random.Random(1))
        generator.specs(10)
        assert generator.generated == 10

    def test_same_seed_same_specs(self):
        a = WorkloadGenerator(WorkloadConfig(), KEYS, random.Random(9)).specs(50)
        b = WorkloadGenerator(WorkloadConfig(), KEYS, random.Random(9)).specs(50)
        assert a == b
