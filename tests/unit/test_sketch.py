"""Unit tests for the streaming quantile sketch.

Pins the three properties the harness relies on (see
``repro/harness/sketch.py``): the relative-error guarantee across sample
distributions, exact (associative, commutative) mergeability, and
determinism — including across processes with different
``PYTHONHASHSEED`` values, since the sketch must not inherit any
hash-ordering dependence.
"""

from __future__ import annotations

import json
import math
import os
import random
import subprocess
import sys

import pytest

from repro.harness.metrics import LatencySummary
from repro.harness.sketch import QuantileSketch, merge_sketches

EPS = 0.01
QUANTILES = (0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0)


def exact_quantile(samples, fraction):
    """The ceil-rank rule used by LatencySummary.from_samples."""
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


def distributions(seed=7, n=20_000):
    rng = random.Random(seed)
    yield "uniform", [rng.uniform(5.0, 5_000.0) for _ in range(n)]
    yield "exponential", [rng.expovariate(1.0 / 250.0) + 1.0 for _ in range(n)]
    yield "lognormal", [rng.lognormvariate(5.0, 1.5) for _ in range(n)]
    # Bimodal: fast local commits plus a slow remote tail, the shape real
    # latency profiles take under partial locality.
    yield (
        "bimodal",
        [rng.gauss(120.0, 10.0) for _ in range(n // 2)]
        + [rng.gauss(2_400.0, 150.0) for _ in range(n - n // 2)],
    )


class TestAccuracy:
    @pytest.mark.parametrize("name,samples", list(distributions()))
    def test_relative_error_bound_across_distributions(self, name, samples):
        sketch = QuantileSketch(relative_error=EPS)
        sketch.extend(samples)
        for q in QUANTILES:
            exact = exact_quantile(samples, q)
            approx = sketch.quantile(q)
            assert approx == pytest.approx(exact, rel=EPS * 1.01), (name, q)

    def test_min_max_mean_are_exact(self):
        samples = [3.5, 9.0, 27.1, 81.9]
        sketch = QuantileSketch()
        sketch.extend(samples)
        assert sketch.min == min(samples)
        assert sketch.max == max(samples)
        assert sketch.mean == pytest.approx(sum(samples) / len(samples))
        assert sketch.count == len(samples)

    def test_quantiles_clamped_to_observed_range(self):
        sketch = QuantileSketch()
        sketch.extend([100.0] * 50)
        assert sketch.quantile(0.0) == 100.0
        assert sketch.quantile(1.0) == 100.0

    def test_underflow_values_collapse_to_one_bucket(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, 1e-6, 5e-4])
        sketch.add(10.0)
        assert sketch.count == 4
        assert len(sketch.buckets) == 2  # underflow + one real bucket
        assert sketch.quantile(0.5) == 0.0  # max(min, 0.0)
        assert sketch.quantile(1.0) == 10.0

    def test_empty_sketch_reads_as_zero(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0

    def test_bounded_bucket_count_over_huge_range(self):
        sketch = QuantileSketch()
        value = 0.1
        while value < 1e7:  # 0.1us .. 10s
            sketch.add(value)
            value *= 1.5
        assert len(sketch.buckets) < 1_000

    def test_matches_latency_summary_rank_rule(self):
        rng = random.Random(13)
        samples = [rng.uniform(10.0, 900.0) for _ in range(5_001)]
        summary = LatencySummary.from_samples(samples)
        sketch = QuantileSketch()
        sketch.extend(samples)
        assert sketch.quantile(0.50) == pytest.approx(summary.p50_us, rel=EPS * 1.01)
        assert sketch.quantile(0.99) == pytest.approx(summary.p99_us, rel=EPS * 1.01)


class TestMerge:
    def test_merge_is_associative_and_commutative(self):
        rng = random.Random(29)
        parts = [[rng.lognormvariate(4.0, 1.0) for _ in range(500)] for _ in range(3)]
        sketches = []
        for part in parts:
            sketch = QuantileSketch()
            sketch.extend(part)
            sketches.append(sketch)
        a, b, c = sketches

        left = merge_sketches([merge_sketches([a, b]), c])
        right = merge_sketches([a, merge_sketches([b, c])])
        reversed_ = merge_sketches([c, b, a])
        assert left.to_dict() == right.to_dict() == reversed_.to_dict()

        # Merging equals sketching the concatenated sample, bit for bit.
        whole = QuantileSketch()
        whole.extend(parts[0] + parts[1] + parts[2])
        assert left.to_dict()["buckets"] == whole.to_dict()["buckets"]
        assert left.count == whole.count

    def test_merge_rejects_mismatched_relative_error(self):
        coarse = QuantileSketch(relative_error=0.05)
        fine = QuantileSketch(relative_error=0.01)
        with pytest.raises(ValueError):
            fine.merge(coarse)

    def test_merge_empty_is_identity(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0, 3.0])
        before = sketch.to_dict()
        sketch.merge(QuantileSketch())
        assert sketch.to_dict() == before
        assert merge_sketches([]).count == 0


class TestSerialization:
    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, 12.5, 800.0, 12_000.0])
        clone = QuantileSketch.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert clone.to_dict() == sketch.to_dict()
        for q in QUANTILES:
            assert clone.quantile(q) == sketch.quantile(q)


DIGEST_SCRIPT = """
import json, random
from repro.harness.sketch import QuantileSketch

rng = random.Random(99)
sketch = QuantileSketch()
sketch.extend(rng.lognormvariate(5.0, 1.2) for _ in range(4000))
print(json.dumps(sketch.to_dict(), sort_keys=True))
"""


class TestDeterminism:
    def test_insertion_order_independent(self):
        rng = random.Random(31)
        samples = [rng.uniform(1.0, 1_000.0) for _ in range(2_000)]
        forward, backward, shuffled = QuantileSketch(), QuantileSketch(), QuantileSketch()
        forward.extend(samples)
        backward.extend(reversed(samples))
        mixed = list(samples)
        rng.shuffle(mixed)
        shuffled.extend(mixed)

        def shape(sketch):
            # ``total`` is a float sum and may differ in the last ulp with
            # insertion order; the quantile-bearing state must not.
            data = sketch.to_dict()
            data.pop("total")
            return data

        assert shape(forward) == shape(backward) == shape(shuffled)
        assert backward.total == pytest.approx(forward.total)
        assert shuffled.total == pytest.approx(forward.total)
        for q in QUANTILES:
            assert forward.quantile(q) == backward.quantile(q) == shuffled.quantile(q)

    def test_identical_across_processes_and_hash_seeds(self):
        digests = []
        for hash_seed in ("0", "1", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            result = subprocess.run(
                [sys.executable, "-c", DIGEST_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(result.stdout.strip())
        assert digests[0] == digests[1] == digests[2]
