"""Unit tests for the windowed (online) consistency checker.

Synthetic histories exercise the epoch/prune machinery directly through
``observe()``: clean histories stay clean across many closed epochs,
planted violations are caught and stay sticky after their epoch closes,
and short histories produce verdicts *identical* to the post-hoc oracle
(they are never pruned, so equivalence is by construction).  The
protocol-sweep equivalence lives in
``tests/integration/test_windowed_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.common.config import TimeoutConfig
from repro.common.ids import TransactionId
from repro.consistency.checkers import run_all_checks
from repro.consistency.history import CommittedTransaction, ReadObservation
from repro.consistency.window import (
    ALL_CHECKS,
    WindowedConsistencyChecker,
    WindowedHistoryRecorder,
    default_retention_us,
)


def committed(seq, node=0, reads=(), writes=(), begin=0.0, end=None, is_update=None, hints=()):
    """Shorthand constructor mirroring test_consistency_and_metrics."""
    reads = tuple(ReadObservation(key=key, writer=writer) for key, writer in reads)
    writes = tuple(writes)
    if is_update is None:
        is_update = bool(writes)
    return CommittedTransaction(
        txn_id=TransactionId(node, seq),
        coordinator=node,
        is_update=is_update,
        reads=reads,
        writes=writes,
        begin_time=begin,
        external_commit_time=end if end is not None else begin + 100.0,
        write_version_hints=tuple(hints),
    )


def chain(n, spacing_us=100.0, key="x"):
    """A clean serial history: each txn reads the previous version of ``key``
    and installs the next one."""
    txns = []
    prev = None
    for seq in range(1, n + 1):
        begin = seq * spacing_us
        txns.append(
            committed(
                seq,
                reads=[(key, prev)] if prev is not None else [(key, None)],
                writes=[key],
                begin=begin,
                end=begin + spacing_us / 2.0,
                hints=[(key, float(seq))],
            )
        )
        prev = txns[-1].txn_id
    return txns


def feed(checker, txns):
    for txn in sorted(txns, key=lambda t: t.external_commit_time):
        checker.observe(txn)
    return checker


class TestWindowMechanics:
    def test_clean_chain_stays_clean_across_many_epochs(self):
        checker = WindowedConsistencyChecker(epoch_us=500.0, retention_us=1_000.0)
        feed(checker, chain(200, spacing_us=100.0))
        results = checker.results()
        assert set(results) == set(ALL_CHECKS)
        assert all(result.ok for result in results.values()), {
            name: result.violations for name, result in results.items()
        }
        stats = checker.stats()
        assert stats["epochs_closed"] > 10
        assert stats["pruned"] > 100
        # The retained window is bounded by retention + epoch worth of txns,
        # not by history length.
        assert stats["max_retained"] <= (1_000.0 + 500.0) / 100.0 + 2

    def test_short_history_matches_post_hoc_verbatim(self):
        # Shorter than retention: nothing is pruned, so windowed results
        # must equal the oracle's, violations included.
        txns = chain(12, spacing_us=50.0)
        checker = feed(WindowedConsistencyChecker(), txns)
        windowed = checker.results()
        oracle = {result.name: result for result in run_all_checks(txns)}
        for name in ALL_CHECKS:
            assert windowed[name].ok == oracle[name].ok
            assert windowed[name].violations == oracle[name].violations

    def test_violation_is_caught_and_sticky_after_epoch_closes(self):
        txns = chain(100, spacing_us=100.0)
        # Plant an external-consistency violation early: a transaction that
        # finishes before txn 5 begins yet reads txn 10's version (a wr edge
        # backwards against real time).
        stale = committed(
            900,
            node=1,
            reads=[("x", TransactionId(0, 10))],
            is_update=False,
            begin=100.0,
            end=150.0,
        )
        checker = WindowedConsistencyChecker(epoch_us=500.0, retention_us=1_000.0)
        feed(checker, txns + [stale])
        results = checker.results()
        assert not results["external-consistency"].ok
        # The violation happened ~98 epochs before the end of the run and
        # the window has long since discarded it; the verdict is sticky.
        assert checker.stats()["epochs_closed"] > 10
        violations = results["external-consistency"].violations
        assert any("T1.900" in violation for violation in violations)

    def test_zombie_read_is_flagged_even_though_writer_is_unknown(self):
        # A read from a writer that never committed (a crashed
        # coordinator's leftover) must stay a snapshot violation — the
        # pruned-writer memory only launders *committed* ids.
        txns = chain(60, spacing_us=100.0)
        zombie = committed(
            901,
            node=2,
            reads=[("x", TransactionId(2, 404))],
            is_update=False,
            begin=3_000.0,
            end=3_050.0,
        )
        checker = WindowedConsistencyChecker(epoch_us=500.0, retention_us=1_000.0)
        feed(checker, txns + [zombie])
        results = checker.results()
        assert not results["snapshot-reads"].ok
        assert any("T2.404" in violation for violation in results["snapshot-reads"].violations)

    def test_read_of_pruned_version_is_not_a_false_positive(self):
        # A rarely written key: its current version's writer is pruned long
        # before later readers commit.  The per-key pruned-writer memory
        # must keep classifying those reads as legal.
        writer = committed(1, writes=["cold"], begin=0.0, end=50.0, hints=[("cold", 1.0)])
        readers = [
            committed(
                seq,
                node=1,
                reads=[("cold", writer.txn_id)],
                is_update=False,
                begin=seq * 200.0,
                end=seq * 200.0 + 40.0,
            )
            for seq in range(2, 80)
        ]
        checker = WindowedConsistencyChecker(epoch_us=400.0, retention_us=800.0)
        feed(checker, [writer] + readers)
        results = checker.results()
        assert all(result.ok for result in results.values()), {
            name: result.violations for name, result in results.items()
        }
        assert checker.stats()["stale_window_reads"] > 0

    def test_deeply_stale_read_is_laundered_by_the_expired_id_filter(self):
        # A hot key advances many versions; a frozen replica keeps serving
        # version 1 far beyond the exact per-key memory.  The Bloom tier
        # remembers "was ever committed" and keeps the read legal.
        txns = chain(120, spacing_us=100.0, key="hot")
        frozen_reads = [
            committed(
                800 + i,
                node=1,
                reads=[("hot", TransactionId(0, 1))],
                is_update=False,
                begin=11_000.0 + i * 50.0,
                end=11_020.0 + i * 50.0,
            )
            for i in range(3)
        ]
        checker = WindowedConsistencyChecker(epoch_us=400.0, retention_us=800.0)
        feed(checker, txns + frozen_reads)
        results = checker.results()
        assert results["snapshot-reads"].ok, results["snapshot-reads"].violations
        assert checker.stats()["pruned_ids_filtered"] > 0

    def test_violation_list_is_deduplicated_and_capped(self):
        checker = WindowedConsistencyChecker(
            epoch_us=500.0, retention_us=1_000.0, max_violations=3
        )
        txns = chain(50, spacing_us=100.0)
        zombies = [
            committed(
                700 + i,
                node=2,
                reads=[("x", TransactionId(2, 500 + i))],
                is_update=False,
                begin=1_000.0 + i * 80.0,
                end=1_040.0 + i * 80.0,
            )
            for i in range(10)
        ]
        feed(checker, txns + zombies)
        violations = checker.results()["snapshot-reads"].violations
        assert len(violations) == 3
        assert len(set(violations)) == 3

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            WindowedConsistencyChecker(epoch_us=0.0)
        with pytest.raises(ValueError):
            WindowedConsistencyChecker(retention_us=-1.0)
        with pytest.raises(ValueError):
            WindowedConsistencyChecker(checks=("external-consistency", "nope"))

    def test_check_subset_only_runs_requested_checks(self):
        checker = WindowedConsistencyChecker(checks=("serializability",))
        feed(checker, chain(5))
        assert set(checker.results()) == {"serializability"}


class TestDefaultRetention:
    def test_derived_from_timeouts(self):
        timeouts = TimeoutConfig()
        expected = (
            timeouts.prepare_timeout_us
            + timeouts.readonly_restart_wait_us
            + 2.0 * timeouts.external_done_wait_us
        )
        assert default_retention_us(timeouts) == expected
        assert default_retention_us(timeouts) > 0


class TestWindowedHistoryRecorder:
    def test_counts_and_abort_rate(self):
        recorder = WindowedHistoryRecorder()
        assert recorder.abort_rate() == 0.0

        class FakeMeta:
            pass

        recorder.aborted_count = 1
        recorder.committed_count = 3
        assert recorder.abort_rate() == pytest.approx(0.25)

    def test_disabled_recorder_ignores_everything(self):
        recorder = WindowedHistoryRecorder(enabled=False)
        recorder.record_commit(object())  # must not touch the meta at all
        recorder.record_abort(object())
        assert recorder.committed_count == 0
        assert recorder.aborted_count == 0

    def test_check_external_consistency_requires_the_check(self):
        recorder = WindowedHistoryRecorder(
            checker=WindowedConsistencyChecker(checks=("serializability",))
        )
        with pytest.raises(ValueError):
            recorder.check_external_consistency()
