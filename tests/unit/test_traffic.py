"""Unit tests for the traffic plane: schedules, arrivals, and the DSL.

Three properties carry the subsystem:

* **exactness** — the closed-form schedule inversion places deterministic
  arrivals on the exact cumulative-rate grid (no drift), and Poisson
  sampling realizes the schedule's intensity within statistical tolerance;
* **determinism** — arrival streams are a pure function of ``(rng state,
  schedule)``; the same seed yields the same instants, byte for byte;
* **strictness** — the ``TrafficPlan`` parser round-trips every documented
  form and rejects malformed specs loudly (a silently mis-parsed scenario
  would invalidate a whole study).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.units import parse_rate_tps, parse_time_us
from repro.traffic import (
    ArrivalProcess,
    BurstArrivals,
    ConstArrivals,
    PiecewiseArrivals,
    PoissonArrivals,
    RampArrivals,
    TrafficPhase,
    TrafficPlan,
    burst_schedule,
    constant_schedule,
    piecewise_schedule,
    ramp_schedule,
)


class TestUnitParsers:
    def test_rate_literals(self):
        assert parse_rate_tps(2000) == 2000.0
        assert parse_rate_tps("2000") == 2000.0
        assert parse_rate_tps("2000tps") == 2000.0
        assert parse_rate_tps("2ktps") == 2000.0
        assert parse_rate_tps("1.5ktps") == 1500.0

    def test_time_literals_still_parse(self):
        assert parse_time_us("30ms") == 30_000.0
        assert parse_time_us("1.5s") == 1_500_000.0

    def test_bad_literals(self):
        with pytest.raises(ConfigurationError):
            parse_rate_tps("fast")
        with pytest.raises(ConfigurationError):
            parse_time_us("soon")


class TestRateSchedules:
    def test_constant_deterministic_grid_is_exact(self):
        process = ArrivalProcess(constant_schedule(1000), sampling="deterministic")
        times = list(process.arrivals(random.Random(1), 0.0, 100_000.0))
        assert times[0] == pytest.approx(1000.0)
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert gaps == {1000.0}
        assert len(times) == 99  # the 100th lands exactly on the horizon

    def test_deterministic_consumes_no_randomness(self):
        rng = random.Random(7)
        before = rng.getstate()
        list(
            ArrivalProcess(
                ramp_schedule(100, 5000, 50_000), sampling="deterministic"
            ).arrivals(rng, 0.0, 50_000.0)
        )
        assert rng.getstate() == before

    def test_ramp_count_matches_integral(self):
        # 0 -> 2000 tps over 100 ms integrates to exactly 100 arrivals.
        process = ArrivalProcess(ramp_schedule(0, 2000, 100_000), sampling="deterministic")
        times = list(process.arrivals(random.Random(1), 0.0, 100_000.0))
        assert len(times) == 99  # arrival 100 lands on the horizon itself
        # Density grows along the ramp: late gaps are a fraction of early ones.
        assert times[-1] - times[-2] < (times[1] - times[0]) / 4

    def test_ramp_holds_final_rate_past_over(self):
        schedule = ramp_schedule(1000, 4000, 10_000)
        assert schedule.rate_at(5_000) == pytest.approx(2500.0)
        assert schedule.rate_at(50_000) == pytest.approx(4000.0)
        process = ArrivalProcess(schedule, sampling="deterministic")
        times = [
            t for t in process.arrivals(random.Random(1), 0.0, 30_000.0) if t > 10_000
        ]
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert gaps == {250.0}  # exactly 4000 tps after the ramp

    def test_burst_arrivals_confined_to_burst_windows(self):
        # base=0: every arrival must land inside a burst window.
        process = ArrivalProcess(burst_schedule(0, 10_000, 10_000, 2_000), sampling="deterministic")
        times = list(process.arrivals(random.Random(1), 0.0, 50_000.0))
        assert len(times) == pytest.approx(100, abs=2)
        assert all(t % 10_000 <= 2_000 + 1e-6 for t in times)

    def test_burst_base_rate_fills_gaps(self):
        process = ArrivalProcess(
            burst_schedule(1000, 8000, 20_000, 5_000), sampling="deterministic"
        )
        times = list(process.arrivals(random.Random(1), 0.0, 100_000.0))
        in_burst = sum(1 for t in times if t % 20_000 <= 5_000)
        off_burst = len(times) - in_burst
        # Expected per 20 ms period: 40 burst arrivals, 15 base arrivals.
        assert in_burst == pytest.approx(200, abs=5)
        assert off_burst == pytest.approx(75, abs=5)

    def test_piecewise_repeat_cycles(self):
        schedule = piecewise_schedule(((5_000, 1000, 1000), (5_000, 3000, 3000)), repeat=True)
        assert schedule.rate_at(2_000) == 1000
        assert schedule.rate_at(7_000) == 3000
        assert schedule.rate_at(12_000) == 1000  # second cycle
        process = ArrivalProcess(schedule, sampling="deterministic")
        times = list(process.arrivals(random.Random(1), 0.0, 1_000_000.0))
        # Mean rate 2000 tps over 1 s.
        assert len(times) == pytest.approx(2000, abs=2)

    def test_poisson_rate_accuracy(self):
        process = ArrivalProcess(constant_schedule(2000), sampling="poisson")
        times = list(process.arrivals(random.Random(42), 0.0, 1_000_000.0))
        # 2000 expected, sd ~45; 4 sd tolerance keeps this deterministic-safe
        # (the rng is seeded, so this is really a regression pin).
        assert len(times) == pytest.approx(2000, abs=180)

    def test_poisson_ramp_rate_accuracy(self):
        # Non-homogeneous Poisson via time warping: the realized count over
        # the ramp must match its integral, and the late half must be denser.
        process = ArrivalProcess(ramp_schedule(500, 7500, 200_000), sampling="poisson")
        times = list(process.arrivals(random.Random(9), 0.0, 200_000.0))
        assert len(times) == pytest.approx(800, abs=110)
        early = sum(1 for t in times if t < 100_000)
        late = len(times) - early
        assert late > 2 * early

    def test_arrivals_are_deterministic_per_seed(self):
        def draw(seed):
            return list(
                ArrivalProcess(
                    burst_schedule(500, 4000, 15_000, 5_000), sampling="poisson"
                ).arrivals(random.Random(seed), 0.0, 120_000.0)
            )

        assert draw(5) == draw(5)
        assert draw(5) != draw(6)

    def test_offset_units_interleave_to_even_grid(self):
        merged = []
        for node in range(4):
            process = ArrivalProcess(
                constant_schedule(1000), sampling="deterministic", offset_units=node / 4
            )
            merged.extend(process.arrivals(random.Random(1), 0.0, 40_000.0))
        merged.sort()
        gaps = {round(b - a, 6) for a, b in zip(merged, merged[1:])}
        assert gaps == {250.0}

    def test_zero_rate_tail_exhausts(self):
        schedule = piecewise_schedule(((10_000, 2000, 0),))
        process = ArrivalProcess(schedule, sampling="deterministic")
        times = list(process.arrivals(random.Random(1), 0.0, math.inf))
        assert times and times[-1] <= 10_000.0


class TestTrafficPlanParsing:
    def test_poisson_with_detached_unit(self):
        plan = TrafficPlan.parse(["poisson rate=2000 tps"])
        (phase,) = plan.phases
        assert phase.arrival == PoissonArrivals(rate_tps=2000.0)
        assert phase.until_us is None and phase.overrides == ()

    def test_const_and_alias(self):
        assert TrafficPlan.parse(["const rate=1ktps"]).phases[0].arrival == ConstArrivals(
            rate_tps=1000.0
        )
        assert TrafficPlan.parse(["deterministic rate=500"]).phases[
            0
        ].arrival == ConstArrivals(rate_tps=500.0)

    def test_ramp_positional_range(self):
        plan = TrafficPlan.parse(["ramp 500..8000 tps over=150ms"])
        assert plan.phases[0].arrival == RampArrivals(
            start_tps=500.0, end_tps=8000.0, over_us=150_000.0
        )

    def test_ramp_keyword_range(self):
        plan = TrafficPlan.parse(["ramp from=1ktps to=4ktps over=50ms"])
        assert plan.phases[0].arrival == RampArrivals(
            start_tps=1000.0, end_tps=4000.0, over_us=50_000.0
        )

    def test_burst(self):
        plan = TrafficPlan.parse(["burst base=1000 peak=6000 every=40ms for=10ms"])
        assert plan.phases[0].arrival == BurstArrivals(
            base_tps=1000.0, peak_tps=6000.0, every_us=40_000.0, for_us=10_000.0
        )

    def test_piecewise(self):
        plan = TrafficPlan.parse(
            ["piecewise segments=1000:20ms,1000..8000:50ms,8000:30ms repeat=true"]
        )
        arrival = plan.phases[0].arrival
        assert arrival == PiecewiseArrivals(
            pieces=(
                (20_000.0, 1000.0, 1000.0),
                (50_000.0, 1000.0, 8000.0),
                (30_000.0, 8000.0, 8000.0),
            ),
            repeat=True,
        )

    def test_phase_scheduling_and_overrides(self):
        plan = TrafficPlan.parse(
            [
                "poisson rate=2000 until=40ms read_only=0.8",
                "poisson rate=6000 until=80ms zipf=0.9",
                "const rate=1000 dist=uniform locality=0.5 ro_keys=4",
            ]
        )
        plan.validate()
        first, second, third = plan.phases
        assert first.until_us == 40_000.0
        assert first.overrides == (("read_only", 0.8),)
        assert second.overrides == (("zipf", 0.9),)
        assert dict(third.overrides) == {
            "dist": "uniform",
            "locality": 0.5,
            "ro_keys": 4,
        }
        windows = plan.phase_windows(100_000.0)
        assert [(start, end) for _, start, end, _ in windows] == [
            (0.0, 40_000.0),
            (40_000.0, 80_000.0),
            (80_000.0, 100_000.0),
        ]

    def test_overrides_apply_to_workload(self):
        plan = TrafficPlan.parse(["poisson rate=100 zipf=0.9 read_only=0.8"])
        base = WorkloadConfig(read_only_fraction=0.2)
        overridden = plan.phases[0].workload_config(base)
        assert overridden.read_only_fraction == 0.8
        assert overridden.key_distribution == "zipfian"
        assert overridden.zipf_theta == 0.9
        # The base config is untouched (phases do not leak into each other).
        assert base.read_only_fraction == 0.2 and base.key_distribution == "uniform"

    def test_sampling_override(self):
        plan = TrafficPlan.parse(
            ["burst base=0 peak=4000 every=10ms for=2ms sampling=deterministic"]
        )
        assert plan.phases[0].process().sampling == "deterministic"
        assert TrafficPlan.parse(["const rate=100"]).phases[0].process().sampling == "deterministic"
        assert TrafficPlan.parse(["poisson rate=100"]).phases[0].process().sampling == "poisson"

    def test_dict_and_phase_objects(self):
        phase = TrafficPhase(arrival=ConstArrivals(rate_tps=10.0))
        plan = TrafficPlan.parse([{"kind": "poisson", "rate": 100}, phase])
        assert plan.phases[1] is phase
        assert plan.phases[0].arrival == PoissonArrivals(rate_tps=100.0)

    def test_plan_is_picklable_and_hashable(self):
        import pickle

        plan = TrafficPlan.parse(["ramp 500..8000 over=150ms until=150ms", "poisson rate=2000"])
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan.phases[0]) is not None

    def test_cluster_config_carries_plan(self):
        config = ClusterConfig(traffic=TrafficPlan.parse(["poisson rate=100"]))
        config.validate()
        assert config.traffic
        assert not ClusterConfig().traffic


class TestTrafficPlanRejections:
    @pytest.mark.parametrize(
        "spec",
        [
            "",  # empty
            "warp rate=100",  # unknown kind
            "poisson",  # missing rate
            "poisson rate=100 speed=9",  # unknown field
            "poisson rate=100 rate=200",  # duplicate field
            "poisson rate=100 tps tps",  # dangling unit after merged unit
            "poisson tps",  # unit with nothing to attach to
            "poisson rate=-5",  # negative rate (validate)
            "poisson rate=nope",  # unparsable rate
            "const rate=0",  # zero rate
            "burst base=1000 peak=500 every=10ms for=2ms",  # peak < base
            "burst base=0 peak=100 every=10ms for=10ms",  # for >= every
            "burst base=0 peak=100 every=10ms",  # missing for
            "ramp 500..8000",  # missing over
            "ramp over=10ms",  # missing range
            "ramp 0..0 over=10ms",  # never offers load
            "piecewise segments=",  # empty segments
            "piecewise segments=100:0ms",  # zero-duration piece
            "poisson rate=100 until=0",  # non-positive until
            "poisson rate=100 sampling=quantum",  # unknown discipline
            "poisson rate=100 ro_keys=0",  # override out of range
            "poisson rate=100 ro_keys=two",  # non-integer override
            "poisson rate=100 read_only=lots",  # non-numeric override
            "poisson rate=100 read_only=1.5",  # fraction out of [0, 1]
            "poisson rate=100 locality=2",  # fraction out of [0, 1]
            "poisson rate=100 zipf=1.0",  # theta out of [0, 1)
            "poisson rate=100 dist=pareto",  # unknown distribution
        ],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            TrafficPlan.parse([spec]).validate()

    def test_phase_order_must_increase(self):
        plan = TrafficPlan.parse(["poisson rate=100 until=40ms", "poisson rate=200 until=30ms"])
        with pytest.raises(ConfigurationError):
            plan.validate()

    def test_only_last_phase_may_be_open_ended(self):
        plan = TrafficPlan.parse(["poisson rate=100", "poisson rate=200 until=40ms"])
        with pytest.raises(ConfigurationError):
            plan.validate()

    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_pending": 0},
            {"queue_limit": -1},
            {"queue_timeout_us": 0.0},
            {"window_us": 0.0},
        ],
    )
    def test_bad_envelope_knobs(self, knobs):
        plan = TrafficPlan.parse(["poisson rate=100"], **knobs)
        with pytest.raises(ConfigurationError):
            plan.validate()
