"""Minimizer convergence on planted (pure-predicate) bugs.

These tests never run a simulation: the predicate is a function of the
genome alone, so they pin the ddmin/shrinking *algorithm* — phase-list
minimality, budget respect, memoization — independent of scenario cost.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.search.genome import ScenarioGenome
from repro.search.minimize import minimize_genome

TRIGGER = "crash node=1 at=5000 for=3000"

BLOATED = ScenarioGenome(
    protocol="sss",
    n_nodes=4,
    n_keys=500,
    clients_per_node=6,
    duration_us=40_000.0,
    fault_specs=(
        "crash node=0 at=1000 for=500",
        "slowlink src=0 dst=1 at=2000 for=1000 factor=2",
        TRIGGER,
        "partition groups=0|1,2,3 at=9000 for=2000",
        "crash node=2 at=15000 for=1000",
    ),
    traffic_specs=(
        "const rate=1000 until=5000",
        "poisson rate=2000 until=10000",
        "burst base=500 peak=4000 every=3000 for=1000",
    ),
).normalize()


def needs_trigger(genome: ScenarioGenome) -> bool:
    """Planted bug: fails iff the trigger crash survives in the plan."""
    return TRIGGER in genome.fault_specs


def test_ddmin_converges_to_single_trigger_phase():
    minimized, used = minimize_genome(BLOATED, needs_trigger, budget=200)
    assert minimized.fault_specs == (TRIGGER,)
    assert minimized.traffic_specs == ()
    assert used <= 200


def test_field_shrinking_reduces_cluster_and_run():
    minimized, _ = minimize_genome(BLOATED, needs_trigger, budget=200)
    assert minimized.clients_per_node < BLOATED.clients_per_node
    assert minimized.n_keys < BLOATED.n_keys
    assert minimized.duration_us < BLOATED.duration_us
    # shrinking must never hand back a genome the predicate rejects
    assert needs_trigger(minimized)
    minimized.validate()


def test_conjunctive_trigger_keeps_both_phases():
    """ddmin on a two-phase bug must retain exactly the two culprits."""
    both = ("crash node=0 at=1000 for=500", TRIGGER)

    def needs_both(genome: ScenarioGenome) -> bool:
        return all(spec in genome.fault_specs for spec in both)

    minimized, _ = minimize_genome(BLOATED, needs_both, budget=200)
    assert sorted(minimized.fault_specs) == sorted(both)
    assert len(minimized.fault_specs) <= 2


def test_budget_exhaustion_returns_valid_repro():
    calls = []

    def counting(genome: ScenarioGenome) -> bool:
        calls.append(1)
        return needs_trigger(genome)

    minimized, used = minimize_genome(BLOATED, counting, budget=5)
    assert used <= 5
    assert len(calls) <= 5
    assert needs_trigger(minimized)


def test_memoization_never_reruns_a_candidate():
    seen = {}

    def tracking(genome: ScenarioGenome) -> bool:
        key = genome.key()
        assert key not in seen, "predicate re-evaluated a cached candidate"
        seen[key] = True
        return needs_trigger(genome)

    minimize_genome(BLOATED, tracking, budget=200)


def test_non_failing_input_rejected():
    healthy = ScenarioGenome(protocol="sss").normalize()
    with pytest.raises(ConfigurationError):
        minimize_genome(healthy, needs_trigger, budget=10)
