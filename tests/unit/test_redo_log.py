"""Unit tests of the participant redo log (storage/commit_queue.py)."""

from __future__ import annotations

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId
from repro.storage.commit_queue import ParticipantRedoLog


def _vc(*entries):
    return VectorClock(list(entries))


class TestParticipantRedoLog:
    def test_vote_then_decision_then_discard(self):
        log = ParticipantRedoLog()
        txn = TransactionId(0, 1)
        record = log.record_vote(txn, _vc(3, 0), write_items=(("k", 9),), read_keys=("r",))
        assert txn in log
        assert not record.decided
        assert log.find(txn).vc == _vc(3, 0)

        log.record_decision(txn, _vc(5, 5), propagated=())
        assert log.find(txn).decided
        assert log.find(txn).vc == _vc(5, 5)

        log.discard(txn)
        assert txn not in log
        assert len(log) == 0

    def test_decision_for_unknown_txn_is_ignored(self):
        log = ParticipantRedoLog()
        log.record_decision(TransactionId(1, 7), _vc(1, 1))
        assert len(log) == 0

    def test_records_sorted_for_deterministic_replay(self):
        log = ParticipantRedoLog()
        ids = [TransactionId(1, 5), TransactionId(0, 9), TransactionId(1, 2)]
        for index, txn in enumerate(ids):
            log.record_vote(txn, _vc(index, 0), (), ())
        assert [r.txn_id for r in log.records()] == sorted(ids)
        assert log.txn_ids() == sorted(ids)

    def test_discard_is_idempotent(self):
        log = ParticipantRedoLog()
        txn = TransactionId(0, 3)
        log.record_vote(txn, _vc(1, 1), (), ())
        log.discard(txn)
        log.discard(txn)
        assert len(log) == 0
