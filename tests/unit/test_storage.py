"""Unit tests for the per-node storage substrate.

Covers version chains, the multi-version store, snapshot queues, the lock
table, the NLog and the commit queue.
"""

from __future__ import annotations

import pytest

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId
from repro.storage.commit_queue import CommitQueue, CommitStatus
from repro.storage.locks import LockMode, LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.nlog import NLog, NLogEntry
from repro.storage.snapshot_queue import READ_KIND, WRITE_KIND, SnapshotQueue, SQueueEntry
from repro.storage.version import Version, VersionChain


def txn(seq: int, node: int = 0) -> TransactionId:
    return TransactionId(node, seq)


class TestVersionChain:
    def test_install_and_latest(self):
        chain = VersionChain(key="k")
        chain.install(Version(1, VectorClock([1, 0])))
        chain.install(Version(2, VectorClock([2, 0])))
        assert chain.latest.value == 2
        assert len(chain) == 2

    def test_latest_of_empty_chain_raises(self):
        with pytest.raises(KeyError):
            VersionChain(key="k").latest

    def test_newest_to_oldest_order(self):
        chain = VersionChain(key="k")
        for value in (1, 2, 3):
            chain.install(Version(value, VectorClock([value])))
        assert [v.value for v in chain.newest_to_oldest()] == [3, 2, 1]

    def test_find_newest_with_predicate(self):
        chain = VersionChain(key="k")
        for value in (1, 2, 3, 4):
            chain.install(Version(value, VectorClock([value])))
        found = chain.find_newest(lambda v: v.vc[0] <= 2)
        assert found.value == 2
        assert chain.find_newest(lambda v: v.vc[0] > 10) is None

    def test_max_length_truncates_oldest(self):
        chain = VersionChain(key="k", max_length=2)
        for value in range(5):
            chain.install(Version(value, VectorClock([value])))
        assert [v.value for v in chain] == [3, 4]

    def test_truncate_before_keeps_minimum(self):
        chain = VersionChain(key="k")
        for value in range(6):
            chain.install(Version(value, VectorClock([value])))
        dropped = chain.truncate_before(min_versions=2)
        assert dropped == 4
        assert [v.value for v in chain] == [4, 5]


class TestMultiVersionStore:
    def test_preload_installs_zero_version(self):
        store = MultiVersionStore(node_index=0)
        store.preload(["a", "b"], initial_value=7, n_nodes=3)
        assert store.latest("a").value == 7
        assert store.latest("b").vc == VectorClock.zeros(3)
        assert store.total_versions() == 2

    def test_preload_is_idempotent(self):
        store = MultiVersionStore(node_index=0)
        store.preload(["a"], n_nodes=2)
        store.preload(["a"], n_nodes=2)
        assert len(store.chain("a")) == 1

    def test_install_appends_version(self):
        store = MultiVersionStore(node_index=0)
        store.preload(["a"], n_nodes=2)
        store.install("a", 10, VectorClock([1, 0]), writer=txn(1))
        assert store.latest("a").value == 10
        assert store.latest("a").writer == txn(1)

    def test_squeue_created_lazily_and_cached(self):
        store = MultiVersionStore(node_index=0)
        queue = store.squeue("a")
        assert store.squeue("a") is queue
        assert store.total_queued_entries() == 0


class TestSnapshotQueue:
    def test_insert_orders_by_snapshot(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 9, READ_KIND))
        queue.insert(SQueueEntry(txn(2), 3, READ_KIND))
        queue.insert(SQueueEntry(txn(3), 6, READ_KIND))
        assert [entry.insertion_snapshot for entry in queue.readers()] == [3, 6, 9]

    def test_duplicate_insert_ignored(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, READ_KIND))
        queue.insert(SQueueEntry(txn(1), 7, READ_KIND))
        assert len(queue) == 1

    def test_readers_and_writers_split(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, READ_KIND))
        queue.insert(SQueueEntry(txn(2), 8, WRITE_KIND))
        assert len(queue.readers()) == 1
        assert len(queue.writers()) == 1
        assert txn(1) in queue and txn(2) in queue

    def test_remove_deletes_all_entries_of_txn(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, READ_KIND))
        queue.insert(SQueueEntry(txn(2), 8, WRITE_KIND))
        assert queue.remove(txn(1)) is True
        assert queue.remove(txn(1)) is False
        assert txn(1) not in queue

    def test_has_reader_below(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, READ_KIND))
        assert queue.has_reader_below(6)
        assert not queue.has_reader_below(5)
        assert not queue.has_reader_below(3)

    def test_has_entry_below_covers_writers_and_excludes_self(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, WRITE_KIND))
        queue.insert(SQueueEntry(txn(2), 8, WRITE_KIND))
        assert queue.has_entry_below(8, exclude_txn=txn(2))
        assert not queue.has_entry_below(8, exclude_txn=txn(1))
        assert not queue.has_entry_below(5, exclude_txn=txn(2))

    def test_writers_above(self):
        queue = SnapshotQueue("k")
        queue.insert(SQueueEntry(txn(1), 5, WRITE_KIND))
        queue.insert(SQueueEntry(txn(2), 9, WRITE_KIND))
        above = queue.writers_above(6)
        assert [entry.txn_id for entry in above] == [txn(2)]

    def test_signal_notified_on_mutation(self, sim):
        queue = SnapshotQueue("k", sim=sim)
        notified = []

        def waiter():
            yield sim.condition(lambda: len(queue) == 0 or True, queue.signal)
            notified.append(True)

        # Attach a condition that is already true so it fires immediately and
        # then verify notify on insert does not break anything.
        sim.process(waiter())
        queue.insert(SQueueEntry(txn(1), 5, READ_KIND))
        sim.run()
        assert notified == [True]

    def test_oldest_writer_age(self, sim):
        queue = SnapshotQueue("k", sim=sim)
        assert queue.oldest_writer_age(now=100.0) is None

        def proc():
            yield sim.timeout(10)
            queue.insert(SQueueEntry(txn(1), 5, WRITE_KIND))

        sim.process(proc())
        sim.run()
        assert queue.oldest_writer_age(now=35.0) == pytest.approx(25.0)


class TestLockTable:
    def test_shared_locks_are_compatible(self, sim):
        table = LockTable(sim)
        assert table.try_acquire(txn(1), "k", LockMode.SHARED)
        assert table.try_acquire(txn(2), "k", LockMode.SHARED)
        assert len(table.holders("k")) == 2

    def test_exclusive_excludes_everyone(self, sim):
        table = LockTable(sim)
        assert table.try_acquire(txn(1), "k", LockMode.EXCLUSIVE)
        assert not table.try_acquire(txn(2), "k", LockMode.SHARED)
        assert not table.try_acquire(txn(2), "k", LockMode.EXCLUSIVE)

    def test_reentrant_acquisition(self, sim):
        table = LockTable(sim)
        assert table.try_acquire(txn(1), "k", LockMode.EXCLUSIVE)
        assert table.try_acquire(txn(1), "k", LockMode.SHARED)
        assert table.try_acquire(txn(1), "k", LockMode.EXCLUSIVE)

    def test_upgrade_allowed_only_for_sole_holder(self, sim):
        table = LockTable(sim)
        table.try_acquire(txn(1), "k", LockMode.SHARED)
        assert table.try_acquire(txn(1), "k", LockMode.EXCLUSIVE)
        table2 = LockTable(sim)
        table2.try_acquire(txn(1), "k", LockMode.SHARED)
        table2.try_acquire(txn(2), "k", LockMode.SHARED)
        assert not table2.try_acquire(txn(1), "k", LockMode.EXCLUSIVE)

    def test_release_wakes_waiter(self, sim):
        table = LockTable(sim)
        log = []

        def holder():
            ok = yield from table.acquire_all(txn(1), ["k"], timeout_us=1000)
            log.append(("holder", ok, sim.now))
            yield sim.timeout(40)
            table.release_all(txn(1))

        def waiter():
            yield sim.timeout(1)
            ok = yield from table.acquire_all(txn(2), ["k"], timeout_us=1000)
            log.append(("waiter", ok, sim.now))

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert ("holder", True, 0.0) in log
        assert ("waiter", True, 40.0) in log

    def test_acquire_all_times_out_and_releases_partial(self, sim):
        table = LockTable(sim)
        log = []

        def holder():
            yield from table.acquire_all(txn(1), ["b"], timeout_us=1000)
            yield sim.timeout(500)
            table.release_all(txn(1))

        def contender():
            yield sim.timeout(1)
            ok = yield from table.acquire_all(txn(2), ["a", "b"], timeout_us=50)
            log.append((ok, sim.now))

        sim.process(holder())
        sim.process(contender())
        sim.run()
        ok, when = log[0]
        assert ok is False
        assert when == pytest.approx(51.0, abs=1.0)
        # The partially acquired lock on "a" must have been released.
        assert table.holders("a") == {}
        assert table.timeout_count == 1

    def test_release_all_clears_everything(self, sim):
        table = LockTable(sim)
        table.try_acquire(txn(1), "a", LockMode.EXCLUSIVE)
        table.try_acquire(txn(1), "b", LockMode.SHARED)
        table.release_all(txn(1))
        assert table.locked_keys() == []


class TestNLog:
    def _entry(self, seq, vc, keys=("k",)):
        return NLogEntry(txn_id=txn(seq), vc=vc, write_keys=tuple(keys), commit_time=0.0)

    def test_append_updates_most_recent(self):
        nlog = NLog(node_index=0, n_nodes=2)
        nlog.append(self._entry(1, VectorClock([3, 1])))
        assert nlog.most_recent_vc == VectorClock([3, 1])
        assert nlog.local_value() == 3
        assert len(nlog) == 1

    def test_cumulative_max_across_entries(self):
        nlog = NLog(node_index=0, n_nodes=2)
        nlog.append(self._entry(1, VectorClock([3, 1])))
        nlog.append(self._entry(2, VectorClock([2, 5])))
        assert nlog.most_recent_vc == VectorClock([2, 5])
        assert nlog.cumulative_max_vc == VectorClock([3, 5])

    def test_retention_bounds_length_but_not_counters(self):
        nlog = NLog(node_index=0, n_nodes=1, retention=3)
        for seq in range(10):
            nlog.append(self._entry(seq, VectorClock([seq + 1])))
        assert len(nlog) == 3
        assert nlog.total_appended == 10
        assert nlog.cumulative_max_vc == VectorClock([10])

    def test_visible_max_summary_respects_read_bounds(self):
        nlog = NLog(node_index=0, n_nodes=2)
        nlog.append(self._entry(1, VectorClock([5, 7])))
        reader_vc = VectorClock([3, 2])
        result = nlog.visible_max_vc(reader_vc, has_read=[False, True])
        assert result[0] == 5  # unread coordinate: cumulative max
        assert result[1] == 2  # read coordinate: capped by the reader's bound

    def test_visible_max_summary_stays_below_excluded_writers(self):
        nlog = NLog(node_index=0, n_nodes=2)
        nlog.append(self._entry(1, VectorClock([5, 1])))
        nlog.append(self._entry(2, VectorClock([8, 1])))
        reader_vc = VectorClock([5, 0])
        excluded = [VectorClock([8, 1])]
        result = nlog.visible_max_vc(reader_vc, has_read=[False, False], excluded=excluded)
        assert result[0] == 7

    def test_visible_max_strict_scans_entries(self):
        nlog = NLog(node_index=0, n_nodes=2)
        nlog.append(self._entry(1, VectorClock([5, 1])))
        nlog.append(self._entry(2, VectorClock([8, 9])))
        reader_vc = VectorClock([10, 1])
        result = nlog.visible_max_vc(reader_vc, has_read=[False, True], strict=True)
        # The second entry is invisible (vc[1]=9 > bound 1), so only the first counts.
        assert result == VectorClock([5, 1])

    def test_strict_mode_excludes_specific_clocks(self):
        nlog = NLog(node_index=0, n_nodes=1)
        nlog.append(self._entry(1, VectorClock([5])))
        nlog.append(self._entry(2, VectorClock([9])))
        result = nlog.visible_max_vc(
            VectorClock([3]), has_read=[False], excluded=[VectorClock([9])], strict=True
        )
        assert result == VectorClock([5])


class TestCommitQueue:
    def test_put_orders_by_local_entry(self):
        queue = CommitQueue(node_index=0)
        queue.put(txn(1), VectorClock([5, 0]))
        queue.put(txn(2), VectorClock([3, 0]))
        assert queue.head().txn_id == txn(2)

    def test_duplicate_put_rejected(self):
        queue = CommitQueue(node_index=0)
        queue.put(txn(1), VectorClock([5]))
        with pytest.raises(ValueError):
            queue.put(txn(1), VectorClock([6]))

    def test_update_marks_ready_and_reorders(self):
        queue = CommitQueue(node_index=0)
        queue.put(txn(1), VectorClock([5, 0]))
        queue.put(txn(2), VectorClock([6, 0]))
        queue.update(txn(2), VectorClock([4, 0]))
        head = queue.head()
        assert head.txn_id == txn(2)
        assert head.status is CommitStatus.READY
        assert queue.head_is_ready()

    def test_pending_head_blocks_ready_followers(self):
        queue = CommitQueue(node_index=0)
        queue.put(txn(1), VectorClock([2, 0]))
        queue.put(txn(2), VectorClock([5, 0]))
        queue.update(txn(2), VectorClock([5, 0]))
        assert not queue.head_is_ready()

    def test_update_unknown_txn_rejected(self):
        queue = CommitQueue(node_index=0)
        with pytest.raises(KeyError):
            queue.update(txn(9), VectorClock([1]))

    def test_remove(self):
        queue = CommitQueue(node_index=0)
        queue.put(txn(1), VectorClock([2]))
        assert queue.remove(txn(1)) is True
        assert queue.remove(txn(1)) is False
        assert queue.head() is None
