"""Unit tests of the baseline durable logs (storage/durable_log.py)."""

from __future__ import annotations

from repro.common.ids import TransactionId
from repro.storage.durable_log import DecisionLog, PieceRedoLog, PropagationLog


class TestPieceRedoLog:
    def test_dispatch_order_execute_lifecycle(self):
        log = PieceRedoLog()
        txn = TransactionId(0, 1)
        record = log.log_dispatch("k", txn, True, 7)
        assert record.order is None and not record.executed
        assert log.find("k", txn) is record
        assert len(log) == 1

        assert log.log_order("k", txn, 10.0) is record
        assert record.order == 10.0

        log.log_execution("k", txn, 10.0, reply=(7, 3, txn))
        assert record.executed
        assert record.reply == (7, 3, txn)
        assert log.frontier("k") == 10.0

    def test_dispatch_is_idempotent_for_resends(self):
        log = PieceRedoLog()
        txn = TransactionId(0, 2)
        first = log.log_dispatch("k", txn, True, 1)
        second = log.log_dispatch("k", txn, True, 999)
        assert second is first
        assert first.write_value == 1  # the original payload wins
        assert len(log) == 1

    def test_order_creates_record_when_dispatch_was_lost(self):
        log = PieceRedoLog()
        txn = TransactionId(1, 4)
        record = log.log_order("k", txn, 5.0, is_write=True, write_value=42)
        assert record.order == 5.0
        assert record.write_value == 42
        assert log.find("k", txn) is record

    def test_frontier_is_per_key_and_monotone(self):
        log = PieceRedoLog()
        assert log.frontier("k") == float("-inf")
        log.log_execution("k", TransactionId(0, 1), 10.0, reply=(None, 0, None))
        log.log_execution("k", TransactionId(0, 2), 4.0, reply=(None, 0, None))
        assert log.frontier("k") == 10.0  # lower order cannot regress it
        assert log.frontier("other") == float("-inf")

    def test_unexecuted_records_replay_order(self):
        log = PieceRedoLog()
        # key "a": two ordered pieces logged out of order, one unordered.
        log.log_order("a", TransactionId(0, 2), 20.0)
        log.log_order("a", TransactionId(0, 1), 10.0)
        log.log_dispatch("a", TransactionId(0, 3), False, None)
        # key "b": one executed (excluded) and one ordered piece.
        log.log_execution("b", TransactionId(1, 1), 1.0, reply=(None, 0, None))
        log.log_order("b", TransactionId(1, 2), 2.0)

        replay = log.unexecuted_records()
        assert [(r.key, r.txn_id) for r in replay] == [
            ("a", TransactionId(0, 1)),  # ordered pieces first, by order
            ("a", TransactionId(0, 2)),
            ("a", TransactionId(0, 3)),  # then unordered, by txn_id
            ("b", TransactionId(1, 2)),
        ]

    def test_discard_is_idempotent(self):
        log = PieceRedoLog()
        txn = TransactionId(0, 9)
        log.log_dispatch("k", txn, False, None)
        log.discard("k", txn)
        log.discard("k", txn)
        assert log.find("k", txn) is None
        assert len(log) == 0


class TestPropagationLog:
    def test_seqno_is_durable_and_monotone(self):
        log = PropagationLog()
        assert log.seqno == 0
        assert log.next_seqno() == 1
        assert log.next_seqno() == 2
        assert log.seqno == 2

    def test_stream_seq_is_contiguous_per_destination(self):
        log = PropagationLog()
        txn = TransactionId(0, 1)
        a1 = log.append(1, txn, 0, 1, (("k", 5),))
        a2 = log.append(1, txn, 0, 2, (("k", 6),))
        b1 = log.append(2, txn, 0, 1, (("k", 5),))
        assert (a1.stream_seq, a2.stream_seq) == (1, 2)
        assert b1.stream_seq == 1  # destination 2 has its own stream

    def test_ack_drops_at_or_below_watermark(self):
        log = PropagationLog()
        txn = TransactionId(0, 1)
        for seq in range(3):
            log.append(1, txn, 0, seq + 1, ())
        log.ack(1, 2)
        assert [r.stream_seq for r in log.unacked(1)] == [3]
        assert log.acked_watermark(1) == 2

    def test_ack_watermark_is_monotone(self):
        log = PropagationLog()
        txn = TransactionId(0, 1)
        for seq in range(3):
            log.append(1, txn, 0, seq + 1, ())
        log.ack(1, 3)
        log.ack(1, 1)  # stale duplicate ack must not resurrect records
        assert log.acked_watermark(1) == 3
        assert not log.has_unacked()

    def test_destinations_with_unacked_sorted(self):
        log = PropagationLog()
        txn = TransactionId(0, 1)
        log.append(3, txn, 0, 1, ())
        log.append(1, txn, 0, 1, ())
        log.append(2, txn, 0, 1, ())
        log.ack(2, 1)
        assert log.destinations_with_unacked() == [1, 3]
        assert log.has_unacked()


class TestDecisionLog:
    def test_record_find_discard(self):
        log = DecisionLog()
        txn = TransactionId(0, 1)
        record = log.record(txn, True, 7, (0, 2))
        assert txn in log
        assert log.find(txn) is record
        assert record.outcome and record.seqno == 7 and record.sites == (0, 2)

        log.discard(txn)
        log.discard(txn)  # idempotent
        assert txn not in log
        assert log.find(txn) is None
        assert len(log) == 0

    def test_txn_ids_sorted_for_deterministic_refanout(self):
        log = DecisionLog()
        ids = [TransactionId(1, 5), TransactionId(0, 9), TransactionId(1, 2)]
        for txn in ids:
            log.record(txn, False, 0, ())
        assert log.txn_ids() == sorted(ids)
