"""Unit tests for the network substrate, latency models and clock codec."""

from __future__ import annotations

import random

import pytest

from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock
from repro.common.config import NetworkConfig, ServiceTimeConfig
from repro.network.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.network.message import Message, MessagePriority
from repro.network.node import NetworkedNode
from repro.network.transport import Network
from repro.sim.engine import Simulation


class Ping(Message):
    __slots__ = ("payload",)
    priority = MessagePriority.READ

    def __init__(self, payload: int = 0):
        Message.__init__(self)
        self.payload = payload


class Pong(Message):
    __slots__ = ("payload",)
    priority = MessagePriority.CONTROL

    def __init__(self, payload: int = 0):
        Message.__init__(self)
        self.payload = payload


class EchoNode(NetworkedNode):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []
        self.register_handler(Ping, self.on_ping)

    def on_ping(self, message: Ping):
        self.received.append(message.payload)
        self.respond(message, Pong(payload=message.payload * 2))


class TestLatencyModels:
    def test_constant_latency(self):
        model = ConstantLatency(15.0)
        rng = random.Random(1)
        assert model.sample(rng) == 15.0
        assert model.mean() == 15.0

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(base=20.0, jitter=5.0)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(15.0 <= sample <= 25.0 for sample in samples)
        assert model.mean() == 20.0

    def test_uniform_latency_invalid_jitter(self):
        with pytest.raises(ValueError):
            UniformLatency(base=10.0, jitter=20.0)

    def test_lognormal_latency_positive_with_tail(self):
        model = LogNormalLatency(median=20.0, sigma=0.5)
        rng = random.Random(3)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(sample > 0 for sample in samples)
        assert max(samples) > 20.0
        assert model.mean() > 20.0

    def test_lognormal_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)


class TestTransport:
    def _cluster(self, n=2, **net_kwargs):
        sim = Simulation(seed=9)
        network = Network(sim, config=NetworkConfig(**net_kwargs))
        nodes = [EchoNode(sim, network, i) for i in range(n)]
        return sim, network, nodes

    def test_request_response_roundtrip(self):
        sim, network, nodes = self._cluster()
        results = []

        def client():
            reply = yield nodes[1].request(0, Ping(payload=21))
            results.append((reply.payload, sim.now))

        sim.process(client())
        sim.run()
        assert results[0][0] == 42
        # One round trip ~= 2x the base latency plus handling.
        assert 30.0 <= results[0][1] <= 80.0

    def test_local_send_skips_propagation_latency(self):
        sim, network, nodes = self._cluster()
        results = []

        def client():
            reply = yield nodes[0].request(0, Ping(payload=1))
            results.append(sim.now)

        sim.process(client())
        sim.run()
        assert results[0] < 20.0

    def test_messages_to_crashed_node_are_dropped(self):
        sim, network, nodes = self._cluster()
        network.crash(0)

        def client():
            nodes[1].send(0, Ping(payload=5))
            yield sim.timeout(200)

        sim.process(client())
        sim.run()
        assert nodes[0].received == []
        assert network.stats.total_dropped == 1

    def test_crash_and_recover(self):
        sim, network, nodes = self._cluster()
        network.crash(0)
        assert network.is_crashed(0)
        network.recover(0)
        assert not network.is_crashed(0)

    def test_duplicate_node_id_rejected(self):
        sim = Simulation()
        network = Network(sim)
        EchoNode(sim, network, 0)
        with pytest.raises(ValueError):
            EchoNode(sim, network, 0)

    def test_priority_messages_dispatched_first(self):
        """CONTROL-priority messages overtake queued READ-priority ones."""
        sim = Simulation(seed=4)
        network = Network(sim, config=NetworkConfig(bandwidth_msgs_per_us=0))
        order = []

        class Slow(Message):
            __slots__ = ("tag",)
            priority = MessagePriority.READ

            def __init__(self, tag: str = ""):
                Message.__init__(self)
                self.tag = tag

        class Urgent(Message):
            __slots__ = ("tag",)
            priority = MessagePriority.CONTROL

            def __init__(self, tag: str = ""):
                Message.__init__(self)
                self.tag = tag

        class Receiver(NetworkedNode):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.register_handler(Slow, lambda m: order.append(m.tag))
                self.register_handler(Urgent, lambda m: order.append(m.tag))

        receiver = Receiver(sim, network, 0, service=ServiceTimeConfig(message_handling_us=50.0))
        sender = NetworkedNode(sim, network, 1)

        def client():
            # Burst of low-priority messages, then one urgent message; the
            # urgent one must be handled before the queued low-priority ones.
            for index in range(4):
                sender.send(0, Slow(tag=f"slow-{index}"))
            yield sim.timeout(30)
            sender.send(0, Urgent(tag="urgent"))

        sim.process(client())
        sim.run()
        # The first message starts being handled before the urgent one exists;
        # the urgent message must then overtake every still-queued slow one.
        assert order[0].startswith("slow")
        assert order[1] == "urgent"

    def test_congestion_model_delays_bursts(self):
        sim, network, nodes = self._cluster(bandwidth_msgs_per_us=0.01)
        arrival_times = []

        class Recorder(EchoNode):
            def on_ping(self, message):
                arrival_times.append(self.sim.now)

        recorder = Recorder(sim, network, 5)

        def client():
            for _ in range(10):
                nodes[1].send(5, Ping(payload=1))
            yield sim.timeout(5_000)

        sim.process(client())
        sim.run()
        assert len(arrival_times) == 10
        # 10 messages at 0.01 msg/us service rate -> the last one is delayed
        # by roughly 1000 us of link queueing.
        assert arrival_times[-1] - arrival_times[0] > 500

    def test_network_stats_counts(self):
        sim, network, nodes = self._cluster()

        def client():
            reply = yield nodes[1].request(0, Ping(payload=1))
            assert reply.payload == 2

        sim.process(client())
        sim.run()
        assert network.stats.sent["Ping"] == 1
        assert network.stats.delivered["Pong"] == 1
        assert network.stats.bytes_sent > 0


class TestVCCodec:
    def test_first_encoding_is_dense(self):
        codec = VCCodec(size=3)
        kind, payload = codec.encode("peer", VectorClock([1, 2, 3]))
        assert kind == VCCodec.DENSE
        assert payload == (1, 2, 3)

    def test_small_change_uses_delta(self):
        sender = VCCodec(size=8)
        clock1 = VectorClock([1] * 8)
        clock2 = clock1.increment(3)
        sender.encode("peer", clock1)
        kind, payload = sender.encode("peer", clock2)
        assert kind == VCCodec.DELTA
        assert payload == ((3, 2),)

    def test_roundtrip_through_receiver(self):
        sender = VCCodec(size=5)
        receiver = VCCodec(size=5)
        clocks = [
            VectorClock([1, 0, 0, 0, 0]),
            VectorClock([1, 2, 0, 0, 0]),
            VectorClock([1, 2, 0, 0, 9]),
            VectorClock([7, 2, 1, 1, 9]),
        ]
        for clock in clocks:
            encoding = sender.encode("peer", clock)
            assert receiver.decode("peer", encoding) == clock

    def test_large_change_falls_back_to_dense(self):
        codec = VCCodec(size=4)
        codec.encode("peer", VectorClock([0, 0, 0, 0]))
        kind, _ = codec.encode("peer", VectorClock([5, 6, 7, 8]))
        assert kind == VCCodec.DENSE

    def test_delta_from_unknown_peer_rejected(self):
        codec = VCCodec(size=2)
        with pytest.raises(ValueError):
            codec.decode("stranger", (VCCodec.DELTA, ((0, 1),)))

    def test_encoded_size_accounting(self):
        dense = (VCCodec.DENSE, (1, 2, 3, 4))
        delta = (VCCodec.DELTA, ((0, 5),))
        assert VCCodec.encoded_size_bytes(dense) > VCCodec.encoded_size_bytes(delta)

    def test_compression_ratio(self):
        codec = VCCodec(size=16)
        history = []
        clock = VectorClock.zeros(16)
        for step in range(20):
            clock = clock.increment(step % 16)
            history.append(codec.encode("peer", clock))
        ratio = codec.compression_ratio(history)
        assert ratio is not None and ratio < 0.6

    def test_wrong_size_rejected(self):
        codec = VCCodec(size=3)
        with pytest.raises(ValueError):
            codec.encode("peer", VectorClock([1, 2]))
