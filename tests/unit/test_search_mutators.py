"""Mutator validity: every mutant re-parses, validates, and differs.

The searcher's core invariant is that mutation can never leave the space
of runnable scenarios: whatever sequence of mutators fires, the resulting
genome's plan strings are accepted by the real ``FaultPlan`` /
``TrafficPlan`` parsers and the materialized configs validate.
"""

import random
from dataclasses import replace

from repro.common.config import FaultPlan
from repro.search.genome import ScenarioGenome
from repro.search.mutators import MUTATORS, mutate
from repro.traffic.plan import TrafficPlan

BASE = ScenarioGenome(
    protocol="sss",
    fault_specs=("crash node=1 at=5000 for=3000",),
    traffic_specs=("poisson rate=2000 until=10000",),
).normalize()


def test_mutation_chain_stays_valid():
    """A long random mutation walk never produces an invalid genome."""
    rng = random.Random(42)
    genome = BASE
    seen_mutators = set()
    for _ in range(120):
        name, genome = mutate(genome, rng)
        seen_mutators.add(name)
        genome.validate()  # raises on any invalid mutant
        # plan strings must be in canonical form (normalize is identity)
        assert genome == genome.normalize()
        FaultPlan.parse(list(genome.fault_specs)).validate(genome.n_nodes)
        TrafficPlan.parse(list(genome.traffic_specs)).validate()
    # the walk should exercise a healthy spread of the mutator table
    assert len(seen_mutators) >= len(MUTATORS) // 2


def test_mutants_differ_from_parent():
    rng = random.Random(7)
    for _ in range(40):
        _, mutant = mutate(BASE, rng)
        assert mutant.key() != BASE.key()


def test_every_mutator_produces_valid_output_when_applicable():
    """Drive each mutator directly (not via mutate) on a rich genome."""
    rich = ScenarioGenome(
        protocol="walter",
        n_nodes=4,
        fault_specs=(
            "crash node=1 at=5000 for=3000",
            "partition groups=0|1,2,3 at=9000 for=2000",
        ),
        traffic_specs=(
            "const rate=1500 until=6000",
            "ramp 500..4000 over=8000",
        ),
    ).normalize()
    rng = random.Random(3)
    applied = 0
    for name, mutator in MUTATORS:
        for attempt in range(12):
            mutant = mutator(rich, rng)
            if mutant is None:
                continue
            mutant = mutant.normalize()
            try:
                mutant.validate()
            except Exception as exc:  # pragma: no cover - failure reporting
                raise AssertionError(f"mutator {name} produced invalid genome: {exc}")
            applied += 1
            break
        else:
            raise AssertionError(f"mutator {name} never applied to a rich genome")
    assert applied == len(MUTATORS)


def test_mutate_is_deterministic_per_rng_seed():
    first = mutate(BASE, random.Random(11))
    second = mutate(BASE, random.Random(11))
    assert first == second


def test_remove_last_traffic_phase_restores_closed_loop_load():
    from repro.search.mutators import remove_traffic_phase

    open_loop = replace(
        BASE, clients_per_node=0, traffic_specs=("poisson rate=2000",)
    ).normalize()
    rng = random.Random(0)
    mutant = remove_traffic_phase(open_loop, rng)
    assert mutant is not None
    mutant.normalize().validate()
    assert mutant.clients_per_node > 0
