"""Serial-vs-parallel engine equivalence: the tentpole guarantee.

The node-sharded conservative engine (``run_experiment(engine="parallel")``)
must be a drop-in replacement for the serial event loop — not statistically
close, *byte-identical*: the same committed/aborted history, the same
per-client statistics, the same protocol and network counters.  The serial
engine stays the golden reference; these tests pin the equivalence

* for every protocol × {fail-free, crash, crash+partition};
* across shard counts (1, 2, 4 shards — one digest);
* across execution modes (inline vs worker processes);
* across interpreters with different ``PYTHONHASHSEED`` values.

plus the driver's configuration guards (closed-loop only, no windowed
recording, positive lookahead required).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import pytest

from repro.common.config import (
    ClusterConfig,
    CrashFault,
    FaultPlan,
    PartitionFault,
    TrafficPlan,
    WorkloadConfig,
)
from repro.common.errors import ConfigurationError
from repro.harness.runner import run_experiment
from repro.protocols.registry import protocol_names

WORKLOAD = WorkloadConfig(read_only_fraction=0.5)
DURATION_US = 8_000.0

FAULT_PLANS = {
    "fail-free": FaultPlan(),
    "crash": FaultPlan(faults=(CrashFault(node=1, at_us=2_500.0, duration_us=1_500.0),)),
    "crash+partition": FaultPlan(
        faults=(
            CrashFault(node=1, at_us=2_500.0, duration_us=1_500.0),
            PartitionFault(groups=((0, 1), (2, 3)), at_us=4_000.0, duration_us=1_500.0),
        )
    ),
}


def _config(faults=FaultPlan(), seed=5):
    return ClusterConfig(
        n_nodes=4,
        n_keys=48,
        replication_degree=2,
        clients_per_node=2,
        seed=seed,
        faults=faults,
    )


def _digest(result) -> str:
    """Byte-stable digest of everything the equivalence contract covers."""
    history = result.cluster.history
    lines = []
    for txn in history.committed:
        reads = ";".join(
            f"{read.key}<-{read.writer}@{read.version_local_value}" for read in txn.reads
        )
        lines.append(
            f"{txn.txn_id}|{txn.coordinator}|{int(txn.is_update)}|{reads}|"
            f"{','.join(map(str, txn.writes))}|{txn.begin_time!r}|"
            f"{txn.external_commit_time!r}"
        )
    for txn in history.aborted:
        lines.append(f"ABORT {txn.txn_id}|{txn.reason}|{txn.abort_time!r}")
    for name, value in sorted(result.node_counters.items()):
        lines.append(f"COUNTER {name}={value}")
    for stats in result.clients:
        lines.append(
            f"CLIENT {stats.node_id}.{stats.client_index}|{stats.committed}|"
            f"{stats.aborted}|{stats.latencies_us!r}|{stats.commit_times_us!r}|"
            f"{stats.abort_times_us!r}"
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _run(engine, faults=FaultPlan(), seed=5, **kwargs):
    return run_experiment(
        "sss" if "protocol" not in kwargs else kwargs.pop("protocol"),
        _config(faults, seed=seed),
        WORKLOAD,
        duration_us=DURATION_US,
        warmup_us=0.0,
        record_history=True,
        keep_cluster=True,
        engine=engine,
        **kwargs,
    )


def _run_parallel_fingerprint(protocol: str = "sss", seed: int = 5) -> str:
    """Module-level hook for the PYTHONHASHSEED subprocess test."""
    result = run_experiment(
        protocol,
        _config(FAULT_PLANS["crash"], seed=seed),
        WORKLOAD,
        duration_us=DURATION_US,
        warmup_us=0.0,
        record_history=True,
        keep_cluster=True,
        engine="parallel",
        shards=2,
        parallel_mode="inline",
    )
    return _digest(result)


_SUBPROCESS_SNIPPET = (
    "import sys; sys.path.insert(0, {src!r}); sys.path.insert(0, {tests!r}); "
    "from test_parallel_engine import _run_parallel_fingerprint; "
    "print(_run_parallel_fingerprint({protocol!r}, {seed}))"
)


def _fingerprint_in_subprocess(hash_seed: str, protocol: str, seed: int) -> str:
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    snippet = _SUBPROCESS_SNIPPET.format(
        src=os.path.join(root, "src"),
        tests=os.path.join(root, "tests", "unit"),
        protocol=protocol,
        seed=seed,
    )
    output = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return output.stdout.strip()


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("protocol", protocol_names())
    def test_histories_identical(self, protocol, fault_name):
        faults = FAULT_PLANS[fault_name]
        serial = _run("serial", faults, protocol=protocol)
        parallel = _run(
            "parallel", faults, protocol=protocol, shards=2, parallel_mode="inline"
        )
        assert _digest(parallel) == _digest(serial)

    @pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
    def test_contract_checks_match(self, fault_name):
        # The merged view must answer the same contract verdicts the real
        # cluster does — including Walter's replica-convergence check, which
        # is rebuilt from per-shard chain summaries.
        faults = FAULT_PLANS[fault_name]
        serial = _run("serial", faults, protocol="walter")
        parallel = _run(
            "parallel", faults, protocol="walter", shards=2, parallel_mode="inline"
        )
        serial_checks = serial.cluster.check_contract()
        parallel_checks = parallel.cluster.check_contract()
        assert [(c.name, c.ok, c.violations) for c in parallel_checks] == [
            (c.name, c.ok, c.violations) for c in serial_checks
        ]


class TestShardCountInvariance:
    def test_shard_count_does_not_change_the_history(self):
        faults = FAULT_PLANS["crash"]
        digests = {
            shards: _digest(_run("parallel", faults, shards=shards, parallel_mode="inline"))
            for shards in (1, 2, 4)
        }
        assert len(set(digests.values())) == 1, digests
        assert digests[2] == _digest(_run("serial", faults))


class TestProcessMode:
    def test_process_mode_matches_inline(self):
        faults = FAULT_PLANS["crash+partition"]
        inline = _run("parallel", faults, shards=2, parallel_mode="inline")
        process = _run("parallel", faults, shards=2, parallel_mode="process")
        assert _digest(process) == _digest(inline)
        assert process.metrics.extra["parallel_sync_rounds"] == (
            inline.metrics.extra["parallel_sync_rounds"]
        )

    def test_streaming_metrics_merge_across_shards(self):
        exact = _run("serial")
        streaming = run_experiment(
            "sss",
            _config(),
            WORKLOAD,
            duration_us=DURATION_US,
            warmup_us=0.0,
            streaming_metrics=True,
            engine="parallel",
            shards=2,
            parallel_mode="process",
        )
        assert streaming.metrics.committed == exact.metrics.committed
        assert streaming.metrics.aborted == exact.metrics.aborted
        assert streaming.metrics.latency.count == exact.metrics.latency.count
        assert streaming.metrics.latency.mean_us == pytest.approx(
            exact.metrics.latency.mean_us
        )


class TestHashSeedIndependence:
    def test_parallel_engine_survives_hash_randomization(self):
        first = _fingerprint_in_subprocess("1", "sss", 5)
        second = _fingerprint_in_subprocess("4242", "sss", 5)
        assert first == second


class TestGuards:
    def test_traffic_plans_are_rejected(self):
        config = ClusterConfig(
            n_nodes=4,
            n_keys=48,
            replication_degree=2,
            clients_per_node=0,
            seed=5,
            traffic=TrafficPlan.parse(["const rate=2000"]),
        )
        with pytest.raises(ConfigurationError):
            run_experiment("sss", config, WORKLOAD, engine="parallel")

    def test_windowed_history_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(
                "sss", _config(), WORKLOAD, record_history="windowed", engine="parallel"
            )

    def test_zero_lookahead_is_rejected(self):
        from dataclasses import replace

        config = _config()
        config = replace(
            config, network=replace(config.network, jitter_us=config.network.base_latency_us)
        )
        with pytest.raises(ConfigurationError):
            run_experiment("sss", config, WORKLOAD, engine="parallel")

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("sss", _config(), WORKLOAD, engine="warp")

    def test_shards_require_the_parallel_engine(self):
        with pytest.raises(ConfigurationError):
            run_experiment("sss", _config(), WORKLOAD, shards=2)
