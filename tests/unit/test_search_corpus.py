"""Corpus retention rules and on-disk round-trip."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.harness.scenario import ScenarioOutcome
from repro.search.corpus import Corpus, dump_genome, load_corpus_dirs, load_known_findings
from repro.search.genome import ScenarioGenome

G1 = ScenarioGenome(protocol="sss", seed=1).normalize()
G2 = ScenarioGenome(protocol="sss", seed=2).normalize()
G3 = ScenarioGenome(protocol="walter", seed=1).normalize()


def outcome(atoms, **signal):
    return ScenarioOutcome(signal=dict(signal), coverage=tuple(sorted(atoms)))


class TestRetention:
    def test_first_genome_always_admitted(self):
        corpus = Corpus()
        assert corpus.consider(G1, outcome({"proto:sss"})) == "new-coverage"
        assert len(corpus) == 1

    def test_duplicate_genome_rejected(self):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss"}))
        assert corpus.consider(G1, outcome({"proto:sss", "fault:crash"})) is None
        assert len(corpus) == 1

    def test_new_atom_admits(self):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss"}))
        assert corpus.consider(G2, outcome({"proto:sss", "fault:crash"})) == "new-coverage"

    def test_same_coverage_same_score_rejected(self):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss"}))
        assert corpus.consider(G2, outcome({"proto:sss"})) is None

    def test_raised_signal_admits(self):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss"}))
        better = outcome({"proto:sss"}, stalled_clients=2.0)
        assert corpus.consider(G2, better) == "raised-signal"
        # and the high-water mark moved: an equal score no longer admits
        assert corpus.consider(G3, better) is None

    def test_covered_atoms_union(self):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss", "fault:none"}))
        corpus.consider(G3, outcome({"proto:walter"}))
        assert corpus.covered_atoms() == ("fault:none", "proto:sss", "proto:walter")


class TestDisk:
    def test_save_load_round_trip(self, tmp_path):
        corpus = Corpus()
        corpus.consider(G1, outcome({"proto:sss"}))
        corpus.consider(G3, outcome({"proto:walter"}))
        written = corpus.save(tmp_path / "corpus")
        assert len(written) == 2
        loaded = Corpus.load_genomes(tmp_path / "corpus")
        assert sorted(g.key() for g in loaded) == sorted((G1.key(), G3.key()))

    def test_load_skips_unparseable_files(self, tmp_path, capsys):
        directory = tmp_path / "corpus"
        directory.mkdir()
        dump_genome(G1, directory / "good.genome.json")
        (directory / "bad.genome.json").write_text('{"protocol": "nope"}')
        (directory / "junk.genome.json").write_text("not json")
        loaded = Corpus.load_genomes(directory)
        assert [g.key() for g in loaded] == [G1.key()]
        assert "skipping" in capsys.readouterr().err

    def test_load_corpus_dirs_dedupes(self, tmp_path):
        for name in ("a", "b"):
            dump_genome(G1, tmp_path / name / "g.genome.json")
        dump_genome(G2, tmp_path / "b" / "h.genome.json")
        loaded = load_corpus_dirs([tmp_path / "a", tmp_path / "b"])
        assert sorted(g.key() for g in loaded) == sorted((G1.key(), G2.key()))

    def test_missing_directory_is_empty(self, tmp_path):
        assert Corpus.load_genomes(tmp_path / "absent") == []


class TestKnownFindings:
    def test_loads_fingerprint_list(self, tmp_path):
        path = tmp_path / "known.json"
        path.write_text(json.dumps(["sss:stall", "2pc:stall"]))
        assert load_known_findings(path) == ("sss:stall", "2pc:stall")

    def test_missing_file_is_empty(self, tmp_path):
        assert load_known_findings(tmp_path / "absent.json") == ()
        assert load_known_findings(None) == ()

    def test_non_array_rejected(self, tmp_path):
        path = tmp_path / "known.json"
        path.write_text('{"sss:stall": true}')
        with pytest.raises(ConfigurationError):
            load_known_findings(path)

    def test_committed_known_findings_file_is_valid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / (
            "benchmarks/search_corpus/known_findings.json"
        )
        fingerprints = load_known_findings(path)
        assert "sss:stall" in fingerprints


def test_committed_corpus_genomes_load():
    from pathlib import Path

    directory = Path(__file__).resolve().parents[2] / "benchmarks/search_corpus"
    genomes = Corpus.load_genomes(directory)
    assert len(genomes) >= 10
    protocols = {genome.protocol for genome in genomes}
    assert protocols == {"sss", "2pc", "rococo", "walter"}
    for genome in genomes:
        genome.validate()
