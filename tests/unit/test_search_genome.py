"""ScenarioGenome: serialization, normalization, validation."""

import json
from dataclasses import replace

import pytest

from repro.common.config import FaultPlan
from repro.common.errors import ConfigurationError
from repro.search.genome import ScenarioGenome
from repro.traffic.plan import TrafficPlan

FULL = ScenarioGenome(
    protocol="walter",
    n_nodes=4,
    n_keys=60,
    replication_degree=2,
    clients_per_node=2,
    seed=9,
    duration_us=15_000.0,
    drain_us=20_000.0,
    read_only_fraction=0.25,
    key_distribution="zipfian",
    zipf_theta=0.9,
    fault_specs=(
        "crash node=1 at=3750 for=2250",
        "partition groups=0,1|2,3 at=8000 for=2000 mode=drop",
        "slowlink src=0 dst=3 at=1000 for=5000 factor=4",
    ),
    traffic_specs=(
        "poisson rate=2000 until=8000 read_only=0.9",
        "burst base=500 peak=6000 every=3000 for=1000",
    ),
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        assert ScenarioGenome.from_dict(FULL.to_dict()) == FULL.normalize()

    def test_json_round_trip(self):
        assert ScenarioGenome.from_json(FULL.to_json()) == FULL.normalize()

    def test_json_is_stable(self):
        once = ScenarioGenome.from_json(FULL.to_json())
        assert once.to_json() == ScenarioGenome.from_json(once.to_json()).to_json()

    def test_to_dict_is_json_serializable(self):
        json.dumps(FULL.to_dict())


class TestNormalize:
    def test_equivalent_spellings_share_key(self):
        a = replace(FULL, fault_specs=("crash node=1 at=3ms for=2250us",) + FULL.fault_specs[1:])
        b = replace(FULL, fault_specs=("crash  at=3000 node=1 for=2250",) + FULL.fault_specs[1:])
        assert a.key() == b.key()

    def test_normalized_specs_reparse_to_same_plans(self):
        normal = FULL.normalize()
        assert FaultPlan.parse(list(normal.fault_specs)) == FaultPlan.parse(
            list(FULL.fault_specs)
        )
        assert TrafficPlan.parse(list(normal.traffic_specs)) == TrafficPlan.parse(
            list(FULL.traffic_specs)
        )

    def test_normalize_is_idempotent(self):
        assert FULL.normalize() == FULL.normalize().normalize()


class TestValidate:
    def test_full_genome_validates(self):
        FULL.validate()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(FULL, protocol="spanner").validate()

    def test_bad_fault_spec_rejected_at_materialization(self):
        with pytest.raises(ConfigurationError):
            replace(FULL, fault_specs=("crash node=banana",)).cluster_config()

    def test_fault_targeting_missing_node_rejected(self):
        bad = replace(FULL, fault_specs=("crash node=9 at=100 for=100",))
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_loadless_genome_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(FULL, clients_per_node=0, traffic_specs=()).validate()

    def test_configs_materialize(self):
        config = FULL.cluster_config()
        assert config.n_nodes == 4
        assert len(config.faults.faults) == 3
        assert len(config.traffic.phases) == 2
        workload = FULL.workload_config()
        assert workload.key_distribution == "zipfian"
