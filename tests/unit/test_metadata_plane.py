"""Unit tests for the metadata plane: interned clocks, slotted messages,
codec accounting.

PR 2 rebuilt the metadata plane around three mechanisms — an interning pool
with copy-on-write semantics for :class:`VectorClock`, ``__slots__``-based
wire messages with class-level priority/size constants, and delta-compressed
clock accounting through :class:`VCCodec` — and these tests pin their
observable semantics.
"""

from __future__ import annotations

import pytest

from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock
from repro.core.messages import (
    Decide,
    ExternalAck,
    ExternalDone,
    Prepare,
    ReadRequest,
    ReadReturn,
    Remove,
    SubscribeExternal,
    Vote,
)
from repro.network.message import Message, MessagePriority


class TestVectorClockInterning:
    def test_zeros_is_shared(self):
        assert VectorClock.zeros(4) is VectorClock.zeros(4)
        assert VectorClock.zeros(4) is not VectorClock.zeros(5)

    def test_merge_interns_fresh_results(self):
        a = VectorClock([1, 0, 3])
        b = VectorClock([0, 2, 1])
        first = a.merge(b)
        second = a.merge(b)
        assert first == VectorClock([1, 2, 3])
        assert first is second

    def test_merge_copy_on_write_returns_operand(self):
        low = VectorClock([1, 1, 1])
        high = VectorClock([2, 2, 2])
        assert low.merge(high) is high
        assert high.merge(low) is high
        assert high.merge(high) is high

    def test_increment_and_with_entry_intern(self):
        base = VectorClock.zeros(3)
        assert base.increment(1) is base.increment(1)
        assert base.with_entry(2, 7) is base.with_entry(2, 7)
        assert base.with_entry(2, 0) is base

    def test_equal_value_different_objects_still_equal(self):
        # The public constructor does not intern; equality must not rely on
        # identity.
        a = VectorClock([3, 1])
        b = VectorClock([3, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_merge_many_matches_pairwise_merges(self):
        base = VectorClock([0, 5, 2, 0])
        others = [
            VectorClock([1, 0, 0, 0]),
            VectorClock([0, 9, 0, 3]),
            VectorClock([1, 1, 4, 1]),
        ]
        expected = base
        for other in others:
            expected = expected.merge(other)
        assert base.merge_many(others) == expected

    def test_merge_many_empty_returns_self(self):
        base = VectorClock([2, 2])
        assert base.merge_many([]) is base

    def test_merge_many_returns_dominating_operand(self):
        base = VectorClock([1, 0])
        top = VectorClock([5, 5])
        assert base.merge_many([VectorClock([2, 1]), top]) is top

    def test_merge_many_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, 2]).merge_many([VectorClock([1, 2, 3])])


class TestSlottedMessages:
    def test_no_instance_dict(self):
        for message in (ReadRequest(), ReadReturn(), Vote(), Remove()):
            assert not hasattr(message, "__dict__")

    def test_priorities_are_class_level(self):
        assert "priority" not in Message.__slots__
        assert ReadRequest.priority is MessagePriority.READ
        assert ReadReturn.priority is MessagePriority.READ
        assert Prepare.priority is MessagePriority.COMMIT
        assert Vote.priority is MessagePriority.COMMIT
        for cls in (Decide, ExternalAck, ExternalDone, SubscribeExternal, Remove):
            assert cls.priority is MessagePriority.CONTROL
        # Instances read the class attribute.
        assert ReadRequest().priority is MessagePriority.READ

    def test_identity_equality_semantics(self):
        # Messages have unique msg_ids, so two instances were never equal
        # even under the old dataclass field equality; the slotted classes
        # keep identity semantics.
        a, b = Remove(keys=("k",)), Remove(keys=("k",))
        assert a == a
        assert a != b
        assert a.msg_id != b.msg_id

    def test_transport_fields_initialized(self):
        message = Vote(vc=VectorClock.zeros(2), success=True)
        assert message.sender == -1
        assert message.destination == -1
        assert message.reply_to is None
        assert message.send_time == 0.0
        assert message.type_name == "Vote"

    def test_dense_size_estimates_without_codec(self):
        vc = VectorClock.zeros(4)
        assert ReadRequest(vc=vc, has_read=(False,) * 4).size_estimate() == 48 + 32 + 4
        assert Vote(vc=vc).size_estimate() == 48 + 32
        assert Decide(commit_vc=vc).size_estimate() == 56 + 32
        assert ReadReturn(max_vc=vc, version_vc=vc).size_estimate() == 66 + 32 + 32
        prepare = Prepare(vc=vc, read_versions=(("k", vc),), write_items=(("k", 1),))
        assert prepare.size_estimate() == 64 + 32 + (16 + 32) + 32

    def test_codec_size_estimates_reflect_delta_compression(self):
        vc = VectorClock([5, 6, 7, 8])
        codec = VCCodec()
        first = Vote(vc=vc).size_estimate(codec, peer=3)
        second = Vote(vc=vc).size_estimate(codec, peer=3)
        # First shipment is dense (no reference yet), repeats are one byte.
        assert first == 48 + (1 + 8 * 4)
        assert second == 48 + 1
        # A different destination has its own reference stream.
        other = Vote(vc=vc).size_estimate(codec, peer=4)
        assert other == first


class TestCodecAccounting:
    def test_clock_bytes_matches_encode(self):
        clocks = [
            VectorClock([0, 0, 0, 0]),
            VectorClock([1, 0, 0, 0]),
            VectorClock([1, 0, 0, 0]),
            VectorClock([4, 5, 6, 7]),
            VectorClock([4, 5, 6, 8]),
        ]
        accounting = VCCodec()
        reference = VCCodec()
        for clock in clocks:
            nbytes = accounting.clock_bytes("peer", clock)
            encoding = reference.encode("peer", clock)
            assert nbytes == VCCodec.encoded_size_bytes(encoding)

    def test_stats_accumulate(self):
        codec = VCCodec()
        codec.clock_bytes(0, VectorClock([1, 2, 3]))
        codec.clock_bytes(0, VectorClock([1, 2, 4]))
        stats = codec.stats()
        assert stats["clocks_encoded"] == 2
        assert stats["dense_bytes_total"] == 2 * (1 + 24)
        assert 0 < stats["encoded_bytes_total"] <= stats["dense_bytes_total"]
        assert stats["encoded_bytes_max"] == 1 + 24  # the initial dense shipment

    def test_adaptive_codec_handles_width_change(self):
        codec = VCCodec()
        assert codec.clock_bytes(1, VectorClock([1, 2])) == 1 + 16
        # Width change resets the reference to a dense shipment.
        assert codec.clock_bytes(1, VectorClock([1, 2, 3])) == 1 + 24

    def test_fixed_width_still_validates(self):
        codec = VCCodec(2)
        with pytest.raises(ValueError):
            codec.encode(0, VectorClock([1, 2, 3]))
