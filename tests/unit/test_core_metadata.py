"""Unit tests for transaction metadata, protocol messages and the node log GC."""

from __future__ import annotations

import pytest

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId
from repro.core.messages import (
    Decide,
    ExternalAck,
    Prepare,
    ReadRequest,
    ReadReturn,
    Remove,
    Vote,
)
from repro.core.metadata import (
    PropagatedEntry,
    TransactionMeta,
    TransactionPhase,
)
from repro.network.message import MessagePriority


def make_meta(is_update=True, n_nodes=3):
    return TransactionMeta(
        txn_id=TransactionId(0, 1),
        coordinator=0,
        is_update=is_update,
        n_nodes=n_nodes,
    )


class TestTransactionMeta:
    def test_initial_state(self):
        meta = make_meta()
        assert meta.vc == VectorClock.zeros(3)
        assert meta.has_read == [False, False, False]
        assert meta.phase is TransactionPhase.EXECUTING
        assert not meta.committed and not meta.aborted

    def test_record_read_and_write(self):
        meta = make_meta()
        meta.record_read("x", 5, VectorClock([1, 0, 0]), TransactionId(1, 2), served_by=1)
        meta.record_write("y", 6)
        assert meta.read_keys() == ("x",)
        assert meta.write_keys() == ("y",)
        assert meta.read_set["x"].value == 5

    def test_last_read_of_key_wins(self):
        meta = make_meta()
        meta.record_read("x", 1, VectorClock([1, 0, 0]), None, served_by=0)
        meta.record_read("x", 2, VectorClock([2, 0, 0]), None, served_by=1)
        assert meta.read_set["x"].value == 2
        assert len(meta.read_set) == 1

    def test_merge_vc_and_has_read(self):
        meta = make_meta()
        meta.merge_vc(VectorClock([0, 5, 1]))
        meta.merge_vc(VectorClock([2, 3, 0]))
        assert meta.vc == VectorClock([2, 5, 1])
        meta.mark_has_read(2)
        assert meta.has_read == [False, False, True]

    def test_propagated_set_deduplicates(self):
        meta = make_meta()
        entry = PropagatedEntry(TransactionId(1, 1), 7)
        meta.add_propagated([entry, entry, PropagatedEntry(TransactionId(1, 1), 7)])
        assert len(meta.propagated_set) == 1

    def test_latency_helpers(self):
        meta = make_meta()
        meta.begin_time = 100.0
        assert meta.latency() is None
        meta.internal_commit_time = 160.0
        meta.external_commit_time = 200.0
        assert meta.latency() == pytest.approx(100.0)
        assert meta.internal_latency() == pytest.approx(60.0)
        assert meta.precommit_wait() == pytest.approx(40.0)

    def test_read_only_flag(self):
        assert make_meta(is_update=False).is_read_only
        assert not make_meta(is_update=True).is_read_only


class TestMessages:
    def test_priorities_match_design(self):
        vc = VectorClock.zeros(2)
        assert ReadRequest(txn_id=None, key="k", vc=vc).priority is MessagePriority.READ
        assert ReadReturn().priority is MessagePriority.READ
        assert Prepare(vc=vc).priority is MessagePriority.COMMIT
        assert Vote(vc=vc).priority is MessagePriority.COMMIT
        assert Decide(commit_vc=vc).priority is MessagePriority.CONTROL
        assert ExternalAck().priority is MessagePriority.CONTROL
        assert Remove().priority is MessagePriority.CONTROL

    def test_prepare_read_keys_property(self):
        vc = VectorClock([1, 2])
        prepare = Prepare(
            txn_id=TransactionId(0, 1),
            vc=vc,
            read_versions=(("a", vc), ("b", vc)),
            write_items=(("a", 5),),
        )
        assert prepare.read_keys == ("a", "b")

    def test_size_estimates_grow_with_payload(self):
        vc = VectorClock.zeros(8)
        small = Prepare(txn_id=None, vc=vc, read_versions=(), write_items=())
        large = Prepare(
            txn_id=None,
            vc=vc,
            read_versions=tuple((f"k{i}", vc) for i in range(10)),
            write_items=tuple((f"k{i}", i) for i in range(10)),
        )
        assert large.size_estimate() > small.size_estimate()

    def test_message_ids_unique(self):
        a, b = Remove(), Remove()
        assert a.msg_id != b.msg_id

    def test_decide_carries_propagated_entries(self):
        entry = PropagatedEntry(TransactionId(2, 3), 9)
        decide = Decide(
            txn_id=TransactionId(0, 1),
            commit_vc=VectorClock([1, 1]),
            outcome=True,
            propagated=(entry,),
        )
        assert decide.propagated[0].snapshot == 9
        assert decide.size_estimate() > Decide(
            txn_id=TransactionId(0, 1), commit_vc=VectorClock([1, 1]), outcome=True
        ).size_estimate()
