"""Unit coverage of the trace plane: spec, recorder, analysis, export, schema.

The integration suites pin the expensive guarantees (byte-determinism across
engines and processes, zero overhead when off, the stall diagnosis); this
module pins the component semantics those suites build on — sampling is a
pure function of the transaction id, the recorder stages per-transaction,
the shard merge reproduces serial order, the critical-path attribution
prefers waits over RPC envelopes, and the exporter emits schema-valid
Chrome trace JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import TransactionId
from repro.sim.engine import Simulation
from repro.trace import (
    TraceRecorder,
    TraceSpec,
    analyze_trace,
    attribution_extra,
    export_chrome_trace,
    merge_trace_payloads,
    trace_to_bytes,
)
from repro.trace.schema import validate_trace

T = TransactionId


class TestTraceSpec:
    def test_default_samples_everything(self):
        spec = TraceSpec()
        assert spec.selects(T(0, 0)) and spec.selects(T(3, 17))

    def test_sample_every_is_pure_in_the_seq(self):
        spec = TraceSpec(sample_every=4)
        assert spec.selects(T(1, 8)) and spec.selects(T(2, 8))
        assert not spec.selects(T(1, 9))

    def test_explicit_ids_replace_sampling(self):
        spec = TraceSpec(sample_every=1000, txn_ids=frozenset({"T1.3", "T0.7"}))
        assert spec.selects(T(1, 3)) and spec.selects(T(0, 7))
        assert not spec.selects(T(1, 0))  # sample_every no longer applies

    def test_coerce_forms(self):
        assert TraceSpec.coerce(None) is None
        assert TraceSpec.coerce(False) is None
        assert TraceSpec.coerce(True) == TraceSpec()
        assert TraceSpec.coerce("out.json").path == "out.json"
        spec = TraceSpec(sample_every=2)
        assert TraceSpec.coerce(spec) is spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_every": 0},
            {"slower_than_us": -1.0},
            {"txn_ids": frozenset({"banana"})},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TraceSpec(**kwargs)

    def test_coerce_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            TraceSpec.coerce(42)


class TestRecorder:
    def _recorder(self, spec=TraceSpec()):
        return TraceRecorder(Simulation(seed=1), spec)

    def test_txn_events_are_staged_per_transaction(self):
        recorder = self._recorder()
        recorder.span("wait.lock", 1.0, txn=T(0, 0), node=2, link=[T(1, 4)], end=5.0)
        recorder.instant("node.crash", 3.0, node=1)
        assert list(recorder.staged) == [T(0, 0)]
        (row,) = recorder.staged[T(0, 0)]
        assert (row.name, row.ts, row.dur, row.link) == ("wait.lock", 1.0, 4.0, (T(1, 4),))
        (node_row,) = recorder.events
        assert (node_row.name, node_row.txn) == ("node.crash", None)

    def test_unsampled_transactions_record_nothing(self):
        recorder = self._recorder(TraceSpec(sample_every=2))
        recorder.span("wait.lock", 0.0, txn=T(0, 1), end=1.0)
        recorder.txn_end(T(0, 1), "commit", 0.0)
        assert not recorder.staged and not recorder.finished

    def test_txn_end_stores_the_summary(self):
        recorder = self._recorder()
        phases = (("phase.execute", 0.0, 2.0),)
        recorder.txn_end(T(2, 4), "commit", 0.0, phases)
        assert recorder.finished[T(2, 4)][2:] == ("commit", phases)


class TestMerge:
    def test_shard_payloads_merge_in_tag_order(self):
        spec = TraceSpec()
        a, b = TraceRecorder(Simulation(seed=1), spec), TraceRecorder(Simulation(seed=1), spec)
        # Simulate two shards recording interleaved engine events by faking
        # the executing-event keys (what the engine sets before callbacks).
        a.sim._ekey_time, a.sim._ekey_key = 10.0, 1
        a.span("wait.lock", 9.0, txn=T(0, 0), end=10.0)
        b.sim._ekey_time, b.sim._ekey_key = 5.0, 7
        b.span("rpc.read", 4.0, txn=T(0, 0), end=5.0)
        result = merge_trace_payloads(spec, [a.payload(), b.payload()])
        assert [row.name for row in result.txns[T(0, 0)]] == ["rpc.read", "wait.lock"]

    def test_slower_than_filter_keeps_unfinished(self):
        spec = TraceSpec(slower_than_us=100.0)
        recorder = TraceRecorder(Simulation(seed=1), spec)
        recorder.span("wait.lock", 0.0, txn=T(0, 0), end=5.0)  # finished fast
        recorder.txn_end(T(0, 0), "commit", 0.0)
        recorder.span("wait.lock", 0.0, txn=T(0, 1), end=5.0)  # never finished
        result = merge_trace_payloads(spec, [recorder.payload()])
        assert list(result.txns) == [T(0, 1)]
        assert result.unfinished == [T(0, 1)]


def _result(spec=TraceSpec(), events=(), txns=None, finished=None):
    return merge_trace_payloads(spec, [(list(events), dict(txns or {}), dict(finished or {}))])


def _row(sim_tag, kind, name, ts, dur, txn=None, node=None, link=(), args=None):
    from repro.trace.recorder import TraceEvent

    return TraceEvent(sim_tag, kind, name, ts, dur, txn, node, tuple(link), args)


class TestAnalysis:
    def test_waits_beat_rpc_beat_phases_and_run_fills_gaps(self):
        txn = T(0, 0)
        rows = [
            _row((0.0, 0, 0), "span", "rpc.prepare", 10.0, 80.0, txn=txn),
            _row((0.0, 0, 1), "span", "wait.lock", 40.0, 20.0, txn=txn),
        ]
        finished = {txn: (0.0, 100.0, "commit", (("phase.execute", 0.0, 100.0),))}
        (path,) = analyze_trace(_result(txns={txn: rows}, finished=finished))
        # 0-10 phase, 10-40 rpc, 40-60 wait, 60-90 rpc, 90-100 phase.
        assert path.attribution == {
            "phase.execute": pytest.approx(20.0),
            "rpc.prepare": pytest.approx(60.0),
            "wait.lock": pytest.approx(20.0),
        }
        assert path.dominant[0] == "rpc.prepare"
        assert path.phase_us == {"phase.execute": pytest.approx(100.0)}

    def test_innermost_same_priority_span_wins(self):
        txn = T(0, 0)
        rows = [
            _row((0.0, 0, 0), "span", "wait.ambiguous", 0.0, 100.0, txn=txn),
            _row((0.0, 0, 1), "span", "wait.ambiguous_guard", 50.0, 50.0, txn=txn),
        ]
        finished = {txn: (0.0, 100.0, "commit", ())}
        (path,) = analyze_trace(_result(txns={txn: rows}, finished=finished))
        assert path.attribution["wait.ambiguous_guard"] == pytest.approx(50.0)
        assert path.attribution["wait.ambiguous"] == pytest.approx(50.0)

    def test_unfinished_txn_spans_to_last_event(self):
        txn = T(0, 0)
        rows = [
            _row((0.0, 0, 0), "instant", "txn.begin", 5.0, 0.0, txn=txn),
            _row((0.0, 0, 1), "span", "wait.commit_queue", 10.0, 90.0, txn=txn),
        ]
        (path,) = analyze_trace(_result(txns={txn: rows}))
        assert (path.begin, path.end, path.outcome) == (5.0, 100.0, "unfinished")
        assert path.dominant[0] == "wait.commit_queue"

    def test_attribution_extra_flattens_histograms(self):
        txn = T(0, 0)
        rows = [_row((0.0, 0, 0), "span", "wait.lock", 0.0, 10.0, txn=txn)]
        finished = {txn: (0.0, 10.0, "commit", ())}
        result = _result(txns={txn: rows}, finished=finished)
        extra = attribution_extra(analyze_trace(result), result)
        assert extra["trace.txns"] == 1.0
        assert extra["trace.dominant.wait.lock"] == 1.0
        assert extra["trace.crit_us.wait.lock"] == pytest.approx(10.0)


class TestExportAndSchema:
    def _synthetic_result(self):
        txn = T(0, 0)
        events = [
            _row((3.0, 2, 0), "instant", "node.crash", 3.0, 0.0, node=1),
        ]
        rows = [
            _row((0.5, 0, 0), "instant", "txn.begin", 0.5, 0.0, txn=txn),
            _row((1.0, 0, 1), "msg", "msg.send", 1.0, 0.0, txn=txn, node=0, args={"flow": 7}),
            _row((2.0, 1, 0), "msg", "msg.recv", 2.0, 0.0, txn=txn, node=1, args={"flow": 7}),
            _row((4.0, 3, 0), "span", "wait.lock", 1.0, 3.0, txn=txn, link=[T(1, 2)]),
            _row((5.0, 4, 0), "instant", "txn.end", 5.0, 0.0, txn=txn),
        ]
        return _result(
            events=events,
            txns={txn: rows},
            finished={txn: (0.5, 5.0, "commit", (("phase.execute", 0.5, 5.0),))},
        )

    def test_export_is_schema_valid_and_deterministic(self):
        result = self._synthetic_result()
        document = export_chrome_trace(result)
        assert validate_trace(document) == []
        assert trace_to_bytes(document) == trace_to_bytes(export_chrome_trace(result))

    def test_flow_start_precedes_step_in_file_order(self):
        document = export_chrome_trace(self._synthetic_result())
        phases = [e["ph"] for e in document["traceEvents"] if e["ph"] in ("s", "f")]
        assert phases and phases.index("s") < phases.index("f")

    def test_schema_rejects_broken_documents(self):
        base = {"pid": 1, "tid": 0, "cat": "x", "id": "1"}
        cases = {
            "without a start": [{"name": "m", "ph": "f", "ts": 1, "bp": "e", **base}],
            "goes backwards": [
                {"name": "a", "ph": "i", "s": "t", "ts": 5, "pid": 1, "tid": 0},
                {"name": "b", "ph": "i", "s": "t", "ts": 4, "pid": 1, "tid": 0},
            ],
            "escapes enclosing": [
                {"name": "outer", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
                {"name": "inner", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 0},
            ],
            "never ended": [{"name": "w", "ph": "b", "ts": 1, **base}],
            "malformed causal link": [
                {
                    "name": "w",
                    "ph": "i",
                    "s": "t",
                    "ts": 1,
                    "pid": 1,
                    "tid": 0,
                    "args": {"link": ["nope"]},
                }
            ],
        }
        for expected, events in cases.items():
            problems = validate_trace({"traceEvents": events})
            assert any(expected in problem for problem in problems), (expected, problems)

    def test_schema_accepts_the_committed_artifact(self, repo_root=None):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "docs" / "traces"
        artifacts = sorted(path.glob("*.trace.json"))
        assert artifacts, "no committed trace artifacts under docs/traces/"
        for artifact in artifacts:
            document = json.loads(artifact.read_text())
            assert validate_trace(document) == [], artifact
