"""Unit tests for the vector clock algebra."""

from __future__ import annotations

import pytest

from repro.clocks.vector_clock import VectorClock


class TestConstruction:
    def test_zeros(self):
        vc = VectorClock.zeros(4)
        assert vc.size == 4
        assert list(vc) == [0, 0, 0, 0]

    def test_from_iterable(self):
        vc = VectorClock([1, 2, 3])
        assert vc.entries == (1, 2, 3)
        assert len(vc) == 3

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.zeros(0)

    def test_entries_coerced_to_int(self):
        vc = VectorClock([1.0, 2.0])
        assert vc.entries == (1, 2)


class TestOperations:
    def test_merge_is_entrywise_max(self):
        a = VectorClock([5, 1, 3])
        b = VectorClock([2, 4, 3])
        assert a.merge(b) == VectorClock([5, 4, 3])

    def test_merge_commutative(self):
        a = VectorClock([5, 1, 3])
        b = VectorClock([2, 4, 3])
        assert a.merge(b) == b.merge(a)

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, 2]).merge(VectorClock([1, 2, 3]))

    def test_increment(self):
        vc = VectorClock([1, 2, 3]).increment(1)
        assert vc == VectorClock([1, 3, 3])

    def test_increment_does_not_mutate(self):
        original = VectorClock([1, 2, 3])
        original.increment(0)
        assert original == VectorClock([1, 2, 3])

    def test_increment_out_of_range(self):
        with pytest.raises(IndexError):
            VectorClock([1, 2]).increment(5)

    def test_with_entry(self):
        assert VectorClock([1, 2, 3]).with_entry(2, 9) == VectorClock([1, 2, 9])

    def test_with_entries_sets_many(self):
        vc = VectorClock([1, 2, 3, 4]).with_entries([0, 2], 7)
        assert vc == VectorClock([7, 2, 7, 4])

    def test_max_over(self):
        vc = VectorClock([1, 9, 3, 4])
        assert vc.max_over([0, 2, 3]) == 4
        assert vc.max_over([1]) == 9

    def test_max_over_empty_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, 2]).max_over([])


class TestOrdering:
    def test_le_when_all_entries_le(self):
        assert VectorClock([1, 2]) <= VectorClock([1, 3])
        assert VectorClock([1, 2]) <= VectorClock([1, 2])

    def test_lt_requires_strict_somewhere(self):
        assert VectorClock([1, 2]) < VectorClock([1, 3])
        assert not VectorClock([1, 2]) < VectorClock([1, 2])

    def test_concurrent_clocks(self):
        a = VectorClock([1, 5])
        b = VectorClock([2, 3])
        assert a.concurrent_with(b)
        assert not (a <= b) and not (b <= a)

    def test_not_concurrent_when_ordered(self):
        assert not VectorClock([1, 2]).concurrent_with(VectorClock([2, 3]))

    def test_ge_gt(self):
        assert VectorClock([3, 3]) >= VectorClock([3, 2])
        assert VectorClock([3, 3]) > VectorClock([3, 2])
        assert not VectorClock([3, 3]) > VectorClock([3, 3])

    def test_equality_and_hash(self):
        a = VectorClock([1, 2, 3])
        b = VectorClock([1, 2, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_usable_as_dict_key(self):
        mapping = {VectorClock([1, 2]): "x"}
        assert mapping[VectorClock([1, 2])] == "x"

    def test_comparison_with_non_clock_rejected(self):
        with pytest.raises(TypeError):
            VectorClock([1]) <= 3  # noqa: B015
