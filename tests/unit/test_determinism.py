"""Determinism of the simulation substrate.

The reproduction's whole value rests on runs being replayable: one seed must
yield one committed history, byte for byte, regardless of interpreter hash
randomization, of process boundaries (the parallel sweep runner fans
datapoints across worker processes) and of the engine's allocation-free fast
paths.  These tests pin that property:

* the same experiment run twice in-process produces identical histories;
* the same experiment run in subprocesses with *different*
  ``PYTHONHASHSEED`` values produces identical histories (set-iteration
  order must never leak into protocol behaviour);
* the engine's plain-number timeout fast path is history-equivalent to
  yielding explicit ``Timeout`` events (the reference engine path).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.runner import run_experiment
from repro.network.node import NetworkedNode


def _history_fingerprint(history) -> str:
    """Canonical, byte-stable digest of a committed history."""
    lines = []
    for txn in history.committed:
        reads = ";".join(
            f"{read.key}<-{read.writer}@{read.version_local_value}"
            for read in txn.reads
        )
        hints = ";".join(f"{key}={value}" for key, value in txn.write_version_hints)
        lines.append(
            f"{txn.txn_id}|{txn.coordinator}|{int(txn.is_update)}|{reads}|"
            f"{','.join(map(str, txn.writes))}|{txn.begin_time!r}|"
            f"{txn.external_commit_time!r}|{hints}"
        )
    for txn in history.aborted:
        lines.append(f"ABORT {txn.txn_id}|{txn.reason}|{txn.abort_time!r}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _run_fingerprint(protocol: str = "sss", seed: int = 7) -> str:
    config = ClusterConfig(
        n_nodes=3, n_keys=24, replication_degree=2, clients_per_node=2, seed=seed
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=15_000,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
    )
    return _history_fingerprint(result.cluster.history)


def _run_open_loop_fingerprint(protocol: str = "sss", seed: int = 7) -> str:
    """History + traffic-accounting digest of an open-loop scenario run.

    The scenario exercises every arrival-process kind plus a mix override,
    so a hash-order leak anywhere in the traffic plane (phase walking,
    admission queue, session pool) would flip the digest.
    """
    from repro.common.config import TrafficPlan

    config = ClusterConfig(
        n_nodes=3,
        n_keys=24,
        replication_degree=2,
        clients_per_node=0,
        seed=seed,
        traffic=TrafficPlan.parse(
            [
                "ramp 2000..12000 over=5ms until=5ms",
                "burst base=2000 peak=9000 every=4ms for=1ms until=10ms read_only=0.8",
                "const rate=4000",
            ]
        ),
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=15_000,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
    )
    extra = result.metrics.extra
    traffic_line = (
        f"offered={extra['offered']}|dropped={extra['dropped']}"
        f"|timed_out={extra['timed_out']}|series="
        + ";".join(
            f"{window['offered']},{window['completed']},{window['latency_p99_us']!r}"
            for window in result.metrics.timeseries
        )
    )
    history_digest = _history_fingerprint(result.cluster.history)
    return hashlib.sha256(f"{history_digest}\n{traffic_line}".encode()).hexdigest()


_SUBPROCESS_SNIPPET = (
    "import sys; sys.path.insert(0, {src!r}); sys.path.insert(0, {tests!r}); "
    "from test_determinism import {func}; "
    "print({func}({protocol!r}, {seed}))"
)


def _fingerprint_in_subprocess(
    hash_seed: str, protocol: str, seed: int, func: str = "_run_fingerprint"
) -> str:
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    snippet = _SUBPROCESS_SNIPPET.format(
        src=os.path.join(root, "src"),
        tests=os.path.join(root, "tests", "unit"),
        protocol=protocol,
        seed=seed,
        func=func,
    )
    output = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return output.stdout.strip()


class TestSameSeedSameHistory:
    @pytest.mark.parametrize("protocol", ["sss", "2pc", "walter"])
    def test_repeated_runs_are_identical(self, protocol):
        assert _run_fingerprint(protocol) == _run_fingerprint(protocol)

    def test_different_seeds_differ(self):
        assert _run_fingerprint(seed=7) != _run_fingerprint(seed=8)

    def test_hash_randomization_does_not_change_histories(self):
        """Two interpreters with different hash seeds agree byte-for-byte.

        This is what makes the parallel sweep runner safe: a datapoint's
        history (and therefore its metrics) cannot depend on which worker
        process executed it.
        """
        first = _fingerprint_in_subprocess("1", "sss", 7)
        second = _fingerprint_in_subprocess("4242", "sss", 7)
        assert first == second
        assert first == _fingerprint_in_subprocess("0", "sss", 7)

    def test_open_loop_runs_are_identical(self):
        assert _run_open_loop_fingerprint("sss") == _run_open_loop_fingerprint("sss")
        assert _run_open_loop_fingerprint(seed=7) != _run_open_loop_fingerprint(seed=8)

    def test_open_loop_survives_hash_randomization(self):
        """Open-loop scenarios are as replayable as closed-loop runs.

        Same digest (history + arrival/drop accounting + time series)
        across interpreters with different ``PYTHONHASHSEED`` values —
        which is what lets the latency-load sweep fan out across worker
        processes and still emit byte-identical datapoints.
        """
        first = _fingerprint_in_subprocess("1", "sss", 7, func="_run_open_loop_fingerprint")
        second = _fingerprint_in_subprocess("4242", "sss", 7, func="_run_open_loop_fingerprint")
        assert first == second


class TestEnginePathEquivalence:
    def test_number_yield_matches_timeout_events(self, monkeypatch):
        """The allocation-free cpu() fast path replays the Timeout path.

        ``cpu()`` returning a plain number must produce the same committed
        history as the reference behaviour of returning a ``Timeout`` event:
        both schedule exactly one resume at ``now + delay`` in the same
        sequence position.
        """
        fast = _run_fingerprint("sss", seed=11)

        def cpu_with_timeout_event(self, micros):
            return self.sim.timeout(micros)

        monkeypatch.setattr(NetworkedNode, "cpu", cpu_with_timeout_event)
        reference = _run_fingerprint("sss", seed=11)
        assert fast == reference
