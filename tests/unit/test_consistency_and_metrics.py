"""Unit tests for the consistency checkers, metrics aggregation and reporting."""

from __future__ import annotations

import pytest

from repro.common.ids import TransactionId
from repro.consistency.checkers import (
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
    check_update_completion_order,
)
from repro.consistency.dsg import build_dependency_edges, install_order
from repro.consistency.history import (
    CommittedTransaction,
    HistoryRecorder,
    ReadObservation,
)
from repro.harness.metrics import ExperimentMetrics, LatencySummary
from repro.harness.reporting import dump_results_markdown, format_series, format_table, speedup_rows
from repro.workload.ycsb import ClientStats


def committed(
    seq,
    node=0,
    reads=(),
    writes=(),
    begin=0.0,
    end=None,
    is_update=None,
    hints=(),
):
    """Shorthand constructor for a committed-transaction record."""
    reads = tuple(ReadObservation(key=key, writer=writer) for key, writer in reads)
    writes = tuple(writes)
    if is_update is None:
        is_update = bool(writes)
    return CommittedTransaction(
        txn_id=TransactionId(node, seq),
        coordinator=node,
        is_update=is_update,
        reads=reads,
        writes=writes,
        begin_time=begin,
        external_commit_time=end if end is not None else begin + 100.0,
        write_version_hints=tuple(hints),
    )


class TestDependencyEdges:
    def test_wr_edge_from_observed_writer(self):
        writer = committed(1, writes=["x"], begin=0, end=100)
        reader = committed(2, reads=[("x", writer.txn_id)], begin=200, end=300)
        edges = build_dependency_edges([writer, reader])
        kinds = {(e.source, e.target, e.kind) for e in edges}
        assert (writer.txn_id, reader.txn_id, "wr") in kinds

    def test_ww_edges_follow_version_hints_not_completion(self):
        first = committed(1, writes=["x"], begin=0, end=500, hints=[("x", 1.0)])
        second = committed(2, writes=["x"], begin=0, end=100, hints=[("x", 2.0)])
        edges = build_dependency_edges([first, second])
        assert any(
            e.kind == "ww" and e.source == first.txn_id and e.target == second.txn_id
            for e in edges
        )

    def test_rw_edge_when_read_version_overwritten(self):
        reader = committed(1, reads=[("x", None)], begin=0, end=50, is_update=False)
        writer = committed(2, writes=["x"], begin=10, end=200)
        edges = build_dependency_edges([reader, writer])
        assert any(
            e.kind == "rw" and e.source == reader.txn_id and e.target == writer.txn_id
            for e in edges
        )

    def test_install_order_falls_back_to_completion_time(self):
        first = committed(1, writes=["x"], begin=0, end=100)
        second = committed(2, writes=["x"], begin=0, end=200)
        order = install_order([second, first])
        assert [txn.txn_id for txn in order["x"]] == [first.txn_id, second.txn_id]


class TestCheckers:
    def test_serializable_history_passes(self):
        t1 = committed(1, writes=["x"], begin=0, end=100, hints=[("x", 1.0)])
        t2 = committed(
            2, reads=[("x", t1.txn_id)], writes=["y"], begin=150, end=250,
            hints=[("y", 2.0)],
        )
        history = [t1, t2]
        assert check_serializability(history).ok
        assert check_external_consistency(history).ok
        assert check_snapshot_reads(history).ok

    def test_dependency_cycle_detected(self):
        # t1 reads x before t2 writes it; t2 reads y before t1 writes it:
        # classic write-skew-like cycle (rw in both directions).
        t1 = committed(1, reads=[("x", None)], writes=["y"], begin=0, end=100, hints=[("y", 1.0)])
        t2 = committed(2, reads=[("y", None)], writes=["x"], begin=0, end=110, hints=[("x", 1.0)])
        result = check_serializability([t1, t2])
        assert not result.ok
        assert result.violations

    def test_realtime_precedence_violation_detected(self):
        writer = committed(1, writes=["x"], begin=0, end=100, hints=[("x", 1.0)])
        # The reader STARTS after the writer's client response, yet observes
        # the initial version: a strict-serializability violation.
        stale_reader = committed(2, reads=[("x", None)], begin=200, end=260, is_update=False)
        result = check_external_consistency([writer, stale_reader])
        assert not result.ok
        # Without real-time edges the same history is serializable.
        assert check_serializability([writer, stale_reader]).ok

    def test_overlapping_transactions_are_not_realtime_ordered(self):
        writer = committed(1, writes=["x"], begin=0, end=300, hints=[("x", 1.0)])
        overlapping_reader = committed(2, reads=[("x", None)], begin=100, end=150, is_update=False)
        assert check_external_consistency([writer, overlapping_reader]).ok

    def test_update_completion_order_check(self):
        # Two conflicting updates whose responses are far apart but whose
        # version order contradicts the response order.
        first_response = committed(1, writes=["x"], begin=0, end=100, hints=[("x", 2.0)])
        second_response = committed(2, writes=["x"], begin=0, end=5_000, hints=[("x", 1.0)])
        result = check_update_completion_order([first_response, second_response])
        assert not result.ok
        # Within the observability tolerance the same pattern is accepted.
        close = committed(2, writes=["x"], begin=0, end=110, hints=[("x", 1.0)])
        assert check_update_completion_order([first_response, close]).ok

    def test_snapshot_reads_detects_torn_view(self):
        writer = committed(
            1, writes=["x", "y"], begin=0, end=100,
            hints=[("x", 1.0), ("y", 1.0)],
        )
        torn = committed(
            2,
            reads=[("x", writer.txn_id), ("y", None)],
            begin=150,
            end=200,
            is_update=False,
        )
        result = check_snapshot_reads([writer, torn])
        assert not result.ok
        assert "older version" in result.violations[0]

    def test_read_from_unknown_writer_detected(self):
        ghost = TransactionId(9, 999)
        reader = committed(1, reads=[("x", ghost)], begin=0, end=50, is_update=False)
        result = check_snapshot_reads([reader])
        assert not result.ok

    def test_empty_history_passes_everything(self):
        history = HistoryRecorder()
        assert check_external_consistency(history).ok
        assert check_serializability(history).ok
        assert check_snapshot_reads(history).ok

    def test_summary_format(self):
        result = check_serializability([])
        assert "PASS" in result.summary()


class TestHistoryRecorder:
    def test_abort_rate(self):
        history = HistoryRecorder()
        assert history.abort_rate() == 0.0
        history.committed.append(committed(1, writes=["x"]))
        from repro.consistency.history import AbortedTransaction

        history.aborted.append(AbortedTransaction(TransactionId(0, 2), 0, True, "validation", 1.0))
        assert history.abort_rate() == pytest.approx(0.5)

    def test_completion_order_sorted(self):
        history = HistoryRecorder()
        history.committed.append(committed(1, writes=["x"], begin=0, end=500))
        history.committed.append(committed(2, writes=["y"], begin=0, end=100))
        ordered = history.completion_order()
        assert [txn.txn_id.seq for txn in ordered] == [2, 1]

    def test_disabled_recorder_ignores(self):
        history = HistoryRecorder(enabled=False)

        class FakeMeta:
            pass

        history.record_commit(FakeMeta())  # must not raise or record
        assert history.committed == []


class TestMetrics:
    def test_latency_summary_percentiles(self):
        summary = LatencySummary.from_samples(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean_us == pytest.approx(50.5)
        assert summary.p50_us == 50
        assert summary.p95_us == 95
        assert summary.p99_us == 99
        assert summary.max_us == 100

    def test_latency_summary_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean_us == 0.0

    def test_metrics_aggregation(self):
        a = ClientStats(node_id=0, client_index=0)
        b = ClientStats(node_id=1, client_index=0)
        a.committed, a.committed_update, a.latencies_us = 10, 10, [100.0] * 10
        a.update_latencies_us = [100.0] * 10
        a.internal_latencies_us = [70.0] * 10
        a.precommit_waits_us = [30.0] * 10
        b.committed, b.committed_read_only, b.latencies_us = 5, 5, [50.0] * 5
        b.aborted = 5
        metrics = ExperimentMetrics.from_clients("sss", 2, [a, b], measured_duration_us=1_000_000.0)
        assert metrics.committed == 15
        assert metrics.aborted == 5
        assert metrics.throughput_tps == pytest.approx(15.0)
        assert metrics.abort_rate == pytest.approx(5 / 20)
        assert metrics.precommit_fraction == pytest.approx(0.3)
        assert metrics.as_dict()["protocol"] == "sss"

    def test_client_stats_record(self):
        from repro.core.metadata import TransactionMeta

        stats = ClientStats(node_id=0, client_index=0)
        meta = TransactionMeta(TransactionId(0, 1), 0, True, 2)
        meta.begin_time = 0.0
        meta.internal_commit_time = 60.0
        meta.external_commit_time = 100.0
        stats.record(meta, committed=True)
        stats.record(meta, committed=False)
        assert stats.committed == 1
        assert stats.aborted == 1
        assert stats.update_latencies_us == [100.0]
        assert stats.precommit_waits_us == [40.0]


class TestReporting:
    def test_format_table_contains_values(self):
        table = format_table("Example", ["5", "10"], {"sss": [1.0, 2.0], "2pc": [0.5, None]})
        assert "Example" in table
        assert "sss" in table and "2pc" in table
        assert "2.0" in table and "-" in table

    def test_format_series(self):
        line = format_series("sss", [5, 10], [1.5, 3.0])
        assert line.startswith("sss:")
        assert "10:3.0" in line

    def test_speedup_rows(self):
        rows = speedup_rows({5: 10.0, 10: 20.0}, {"2pc": {5: 5.0, 10: 0.0}})
        assert rows["2pc"][0] == pytest.approx(2.0)
        assert rows["2pc"][1] is None

    def test_markdown_dump(self):
        text = dump_results_markdown("Figure X", [1, 2], {"sss": [1.0, 2.0]})
        assert text.startswith("### Figure X")
        assert "| sss |" in text
