#!/usr/bin/env python3
"""The paper's motivating scenario: an online document-sharing service.

Two clients, C1 (on node N1) and C2 (on node N2), synchronize the same
document D concurrently.  C1's synchronization completes first and C1 tells
C2 out of band; when C2's synchronization completes, C2 expects to observe
C1's modification — which only an externally consistent store guarantees.

The example runs the scenario on SSS and on the Walter (PSI) baseline and
reports, over a number of trials, how often C2 observed C1's modification
when C1 completed first.  SSS always satisfies the expectation; Walter —
which only provides Parallel Snapshot Isolation — can miss it because C2's
snapshot may predate C1's commit even though C1's response came first.

Run with::

    python examples/document_sharing.py
"""

from __future__ import annotations

from repro import ClusterConfig
from repro.protocols import build_cluster

DOCUMENT = "document-D"
TRIALS = 20


def run_trial(protocol: str, seed: int, keys) -> dict:
    """One trial: C1 writes the document, C2 reads it after C1 returned."""
    config = ClusterConfig(n_nodes=4, n_keys=len(keys), replication_degree=2, seed=seed)
    cluster = build_cluster(
        protocol, config=config, keys=keys, record_history=True, initial_value="v0"
    )
    outcome = {"c1_done": None, "c2_done": None, "c2_saw_c1": None}

    def client1(session):
        session.begin(read_only=False)
        current = yield from session.read(DOCUMENT)
        session.write(DOCUMENT, f"{current}+edit-by-C1")
        committed = yield from session.commit()
        if committed:
            outcome["c1_done"] = cluster.now

    def client2(session):
        # C2 waits until C1's synchronization has returned (the out-of-band
        # notification of the paper's example), then reads the document.
        while outcome["c1_done"] is None:
            yield session.node.sim.timeout(50)
        session.begin(read_only=True)
        content = yield from session.read(DOCUMENT)
        yield from session.commit()
        outcome["c2_done"] = cluster.now
        outcome["c2_saw_c1"] = "edit-by-C1" in str(content)

    cluster.spawn(client1(cluster.session(0)))
    cluster.spawn(client2(cluster.session(1)))
    cluster.run()
    return outcome


def main() -> None:
    keys = [DOCUMENT] + [f"other-{i}" for i in range(15)]
    print(f"scenario: C2 reads {DOCUMENT!r} only after C1's write returned\n")
    for protocol in ("sss", "walter"):
        satisfied = 0
        applicable = 0
        for trial in range(TRIALS):
            outcome = run_trial(protocol, seed=100 + trial, keys=keys)
            if outcome["c1_done"] is None or outcome["c2_saw_c1"] is None:
                continue
            applicable += 1
            if outcome["c2_saw_c1"]:
                satisfied += 1
        print(f"{protocol:7s}: C2 observed C1's edit in {satisfied}/{applicable} trials")
    print(
        "\nSSS (external consistency) always satisfies the client expectation;\n"
        "a PSI store may serve C2 a snapshot that predates C1's commit even\n"
        "though C1's response arrived first."
    )


if __name__ == "__main__":
    main()
