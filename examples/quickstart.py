#!/usr/bin/env python3
"""Quickstart: run transactions against a simulated SSS cluster.

The example builds a five-node cluster with replication degree two, runs a
handful of update and read-only transactions from clients on different nodes,
prints what each transaction observed, and finally verifies that the recorded
history is externally consistent.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, SSSCluster


def transfer(session, source, destination, amount, results):
    """A bank-style transfer: read two accounts, move ``amount`` across.

    Update transactions can abort under conflicts (lock timeouts or
    validation failures); like the paper's closed-loop clients, the transfer
    simply retries until it commits.
    """
    attempts = 0
    while True:
        attempts += 1
        session.begin(read_only=False)
        source_balance = yield from session.read(source)
        destination_balance = yield from session.read(destination)
        session.write(source, source_balance - amount)
        session.write(destination, destination_balance + amount)
        committed = yield from session.commit()
        if committed:
            results.append(
                f"transfer {amount} {source}->{destination}: committed after "
                f"{attempts} attempt(s) (latency {session.last.latency():.0f} us)"
            )
            return
        # Brief back-off before retrying, to let the conflicting transfer finish.
        yield session.node.sim.timeout(200 * attempts)


def audit(session, accounts, results):
    """A read-only audit: the sum of all balances must be preserved."""
    session.begin(read_only=True)
    total = 0
    for account in accounts:
        total += yield from session.read(account)
    committed = yield from session.commit()
    results.append(
        f"audit: total balance = {total} "
        f"({'committed' if committed else 'aborted'}, abort-free by design)"
    )


def main() -> None:
    accounts = [f"account-{index}" for index in range(8)]
    config = ClusterConfig(n_nodes=5, n_keys=len(accounts), replication_degree=2, seed=7)
    cluster = SSSCluster(config, keys=accounts, initial_value=100)

    results: list[str] = []
    cluster.spawn(transfer(cluster.session(0), "account-0", "account-1", 25, results))
    cluster.spawn(transfer(cluster.session(1), "account-2", "account-3", 10, results))
    cluster.spawn(audit(cluster.session(2), accounts, results))
    cluster.spawn(transfer(cluster.session(3), "account-1", "account-2", 5, results))
    cluster.spawn(audit(cluster.session(4), accounts, results))

    cluster.run()

    print(f"simulated time elapsed: {cluster.now:.0f} us")
    for line in results:
        print(" -", line)

    check = cluster.check_consistency()
    print(check.summary())
    total_committed = cluster.total_counters().get(
        "update_commits", 0
    ) + cluster.total_counters().get("read_only_commits", 0)
    print(f"committed transactions: {total_committed}")


if __name__ == "__main__":
    main()
