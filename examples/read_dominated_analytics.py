#!/usr/bin/env python3
"""Read-dominated analytics workload: abort-free long read-only transactions.

The paper motivates SSS with read-dominated real-world workloads: long
read-only transactions (analytical scans over many keys) must neither abort
nor force a centralized synchronization point.  This example runs a YCSB-like
mix of 80 % read-only transactions whose read-set size grows from 2 to 16
keys — the Figure 8 configuration — on SSS, on the 2PC-baseline and on
ROCOCO, and reports throughput, abort rate and read-only latency for each.

Run with::

    python examples/read_dominated_analytics.py
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_experiment

PROTOCOLS = ("sss", "rococo", "2pc")
READ_SET_SIZES = (2, 8, 16)


def main() -> None:
    throughput_rows = {protocol: [] for protocol in PROTOCOLS}
    abort_rows = {protocol: [] for protocol in PROTOCOLS}
    latency_rows = {protocol: [] for protocol in PROTOCOLS}

    for size in READ_SET_SIZES:
        for protocol in PROTOCOLS:
            config = ClusterConfig(
                n_nodes=5,
                n_keys=400,
                replication_degree=1,
                clients_per_node=3,
                seed=31,
            )
            workload = WorkloadConfig(read_only_fraction=0.8, read_only_txn_keys=size)
            result = run_experiment(
                protocol, config, workload, duration_us=60_000, warmup_us=10_000
            )
            metrics = result.metrics
            throughput_rows[protocol].append(metrics.throughput_ktps)
            abort_rows[protocol].append(metrics.abort_rate * 100.0)
            latency_rows[protocol].append(metrics.read_only_latency.mean_ms)

    columns = [f"{size} reads" for size in READ_SET_SIZES]
    print(format_table("Throughput (KTx/s), 80% read-only, 5 nodes", columns, throughput_rows))
    print()
    print(format_table("Abort rate (%)", columns, abort_rows, value_format="{:.2f}"))
    print()
    print(
        format_table(
            "Read-only transaction latency (ms)",
            columns,
            latency_rows,
            value_format="{:.3f}",
        )
    )
    print(
        "\nSSS's read-only transactions are abort-free regardless of length;"
        "\nROCOCO's and the 2PC-baseline's read-only transactions abort or wait"
        "\nmore as they touch more keys, which is where SSS's speedup comes from"
        "\n(Figure 8 of the paper)."
    )


if __name__ == "__main__":
    main()
