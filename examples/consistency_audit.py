#!/usr/bin/env python3
"""Consistency audit: machine-check the paper's correctness claims.

Section IV of the paper argues that every history executed by SSS is
externally consistent by showing that its Direct Serialization Graph (with
real-time ordering edges) is acyclic.  This example makes the argument
empirical: it runs the same mixed YCSB workload on all four protocols with
history recording enabled, builds the DSG of each history and reports which
consistency levels hold.

Expected output: SSS and the 2PC-baseline pass every check; ROCOCO passes
the serializability checks; Walter (PSI) passes the per-transaction snapshot
check but is allowed to fail external consistency / serializability because
it only guarantees Parallel Snapshot Isolation.

Run with::

    python examples/consistency_audit.py
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.consistency.checkers import (
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.harness.runner import run_experiment

PROTOCOLS = ("sss", "2pc", "rococo", "walter")


def audit(protocol: str):
    config = ClusterConfig(
        n_nodes=4, n_keys=60, replication_degree=2 if protocol != "rococo" else 1,
        clients_per_node=2, seed=17,
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=40_000,
        warmup_us=0,
        record_history=True,
        keep_cluster=True,
    )
    history = result.cluster.history
    return history, result.metrics


def main() -> None:
    for protocol in PROTOCOLS:
        history, metrics = audit(protocol)
        external = check_external_consistency(history)
        serializable = check_serializability(history)
        snapshots = check_snapshot_reads(history)
        print(f"=== {protocol} ===")
        print(
            f"  committed={len(history.committed)} aborted={len(history.aborted)} "
            f"throughput={metrics.throughput_ktps:.1f} KTx/s"
        )
        for check in (external, serializable, snapshots):
            print("  " + check.summary())
            for violation in check.violations[:3]:
                print("      " + violation)
        print()
    print(
        "SSS and the 2PC-baseline provide external consistency; Walter provides\n"
        "PSI only, so cycles in its graph are expected rather than a bug."
    )


if __name__ == "__main__":
    main()
