#!/usr/bin/env python3
"""Overload study: ramp one SSS cluster through its saturation point.

Closed-loop clients (the paper's methodology, and every other example)
self-throttle: offered load always equals completion rate, so "what happens
when demand exceeds capacity?" is unobservable.  This example uses the
traffic plane instead — a single open-loop scenario that ramps offered load
linearly from well below to well past saturation — and walks through the
time-resolved output:

* below saturation, goodput tracks offered load and p99 latency is flat;
* approaching saturation, queues form: p99 inflects while goodput still
  tracks;
* past saturation, goodput flattens at capacity, latency hits the
  admission envelope, and the overflow is shed as drops/timeouts — the
  explicit overload accounting an operator would alarm on.

Run with::

    python examples/overload_study.py
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, TrafficPlan, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_experiment

DURATION_US = 120_000.0
RAMP = "ramp 4000..96000 over=100ms"


def main() -> None:
    plan = TrafficPlan.parse([RAMP], window_us=10_000.0)
    config = ClusterConfig(
        n_nodes=3,
        n_keys=400,
        replication_degree=2,
        clients_per_node=0,  # open loop: the traffic plan drives the run
        seed=11,
        traffic=plan,
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    print(f'Scenario: "{RAMP}" on a 3-node SSS cluster (50% read-only)\n')
    result = run_experiment("sss", config, workload, duration_us=DURATION_US, warmup_us=0)
    metrics = result.metrics

    columns = [
        f"{int(window['start_us'] / 1000)}ms" for window in metrics.timeseries
    ]
    rows = {
        "offered KTx/s": [w["offered_tps"] / 1000.0 for w in metrics.timeseries],
        "goodput KTx/s": [w["goodput_tps"] / 1000.0 for w in metrics.timeseries],
        "p50 ms": [w["latency_p50_us"] / 1000.0 for w in metrics.timeseries],
        "p99 ms": [w["latency_p99_us"] / 1000.0 for w in metrics.timeseries],
        "shed/window": [
            float(w["dropped"] + w["timed_out"]) for w in metrics.timeseries
        ],
    }
    print(format_table("Time-resolved view (10 ms windows)", columns, rows, value_format="{:.1f}"))

    # Estimate the saturation point: the last window where goodput still
    # tracked offered load within 10 %.
    tracked = [
        window
        for window in metrics.timeseries
        if window["offered"]
        and window["goodput_tps"] >= 0.9 * window["offered_tps"]
    ]
    capacity = max(window["goodput_tps"] for window in metrics.timeseries)
    print()
    if tracked:
        knee = tracked[-1]
        print(
            f"Saturation knee: goodput last tracked offered load in the "
            f"{int(knee['start_us'] / 1000)}ms window "
            f"(~{knee['offered_tps'] / 1000:.0f} KTx/s offered)."
        )
    print(
        f"Measured capacity: ~{capacity / 1000:.0f} KTx/s goodput; past the knee "
        f"the ramp kept rising to {metrics.timeseries[-1]['offered_tps'] / 1000:.0f} "
        f"KTx/s offered."
    )
    print(
        f"Run totals: offered {int(metrics.extra['offered'])}, committed "
        f"{metrics.committed}, shed {int(metrics.extra['dropped'])} drops + "
        f"{int(metrics.extra['timed_out'])} queue timeouts, max queue depth "
        f"{int(metrics.extra['queue_depth_max'])}."
    )
    print(
        "\nThe knee, the latency inflection and the explicit shed counts are"
        "\nexactly what closed-loop saturation sweeps cannot show: demand and"
        "\nservice rate are independent quantities here, so overload is a"
        "\nmeasured state instead of an unreachable one."
    )


if __name__ == "__main__":
    main()
