#!/usr/bin/env python3
"""Mini reproduction of Figure 3: throughput comparison across protocols.

Runs the Figure 3 experiment at a laptop-friendly scale (two node counts,
three read-only mixes) for SSS, the 2PC-baseline and Walter, prints the same
series the paper plots, and summarizes how the gaps move — the qualitative
result the reproduction targets.

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_experiment

PROTOCOLS = ("sss", "2pc", "walter")
NODE_COUNTS = (3, 6)
READ_ONLY_MIXES = (0.2, 0.5, 0.8)


def run_mix(read_only_fraction: float):
    rows = {protocol: [] for protocol in PROTOCOLS}
    for n_nodes in NODE_COUNTS:
        for protocol in PROTOCOLS:
            config = ClusterConfig(
                n_nodes=n_nodes,
                n_keys=400,
                replication_degree=2,
                clients_per_node=3,
                seed=41,
            )
            workload = WorkloadConfig(read_only_fraction=read_only_fraction)
            result = run_experiment(
                protocol, config, workload, duration_us=60_000, warmup_us=10_000
            )
            rows[protocol].append(result.metrics.throughput_ktps)
    return rows


def main() -> None:
    summary = {}
    for mix in READ_ONLY_MIXES:
        rows = run_mix(mix)
        summary[mix] = rows
        print(
            format_table(
                f"Throughput (KTx/s), {int(mix * 100)}% read-only, rf=2",
                [f"{n} nodes" for n in NODE_COUNTS],
                rows,
            )
        )
        print()

    print("Qualitative summary (largest node count):")
    for mix, rows in summary.items():
        sss = rows["sss"][-1]
        twopc = rows["2pc"][-1]
        walter = rows["walter"][-1]
        print(
            f"  {int(mix * 100):3d}% read-only: "
            f"SSS/2PC = {sss / max(twopc, 1e-9):.2f}x, "
            f"Walter/SSS = {walter / max(sss, 1e-9):.2f}x"
        )
    print(
        "\nPaper's shape: SSS's lead over the 2PC-baseline grows with the"
        "\nread-only share while Walter's lead over SSS shrinks."
    )


if __name__ == "__main__":
    main()
