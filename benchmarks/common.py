"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark follows the same pattern:

1. sweep the figure's parameters at a scaled-down size (see
   :class:`repro.harness.experiments.BenchmarkScale`) so the whole suite runs
   in minutes of wall-clock time on a laptop;
2. print the table of committed-transactions-per-second series that mirrors
   the paper's figure;
3. assert the qualitative *shape* the paper reports (who wins, how the gap
   moves) — absolute numbers are not comparable because the substrate is a
   simulator rather than the authors' CloudLab testbed;
4. register the sweep with ``pytest-benchmark`` (one round, one iteration) so
   ``pytest benchmarks/ --benchmark-only`` reports the wall-clock cost of
   regenerating each figure;
5. emit a machine-readable ``BENCH_<figure>.json`` (via
   :func:`flush_bench_json`) recording, per datapoint, the simulated
   throughput *and* the simulator's own performance (events/sec, committed
   transactions per wall second, wall-clock), so the perf trajectory of the
   substrate is tracked PR-over-PR and CI can fail on regressions.

Sweeps fan their independent datapoints across CPU cores with
:class:`~concurrent.futures.ProcessPoolExecutor` (each datapoint is an
isolated simulation with a fixed seed, so results are byte-identical to a
serial run).

Environment knobs:

* ``REPRO_BENCH_DURATION_US`` — simulated microseconds per datapoint
  (default 80 000).
* ``REPRO_BENCH_NODES`` — comma-separated node counts for the sweeps
  (default ``3,6``).
* ``REPRO_BENCH_KEYS`` — number of keys (default 400).
* ``REPRO_BENCH_CLIENTS`` — closed-loop clients per node (default 3).
* ``REPRO_BENCH_PARALLEL`` — worker processes for sweeps (``0``/``1``
  serial; default: all CPUs but one).
* ``REPRO_BENCH_OUT`` — directory receiving the ``BENCH_*.json`` files
  (default: current directory).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.metrics import ExperimentMetrics
from repro.harness.runner import (
    ExperimentPoint,
    ExperimentResult,
    run_experiment,
    run_points,
)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_ints(name: str, default: Tuple[int, ...]) -> Tuple[int, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(",") if part)


@dataclass(frozen=True)
class BenchSettings:
    """Scaled-down sweep parameters used by the benchmark suite."""

    node_counts: Tuple[int, ...] = _env_ints("REPRO_BENCH_NODES", (3, 6))
    n_keys: int = _env_int("REPRO_BENCH_KEYS", 400)
    clients_per_node: int = _env_int("REPRO_BENCH_CLIENTS", 3)
    duration_us: float = float(_env_int("REPRO_BENCH_DURATION_US", 80_000))
    warmup_us: float = 15_000.0
    seed: int = 2024


SETTINGS = BenchSettings()


def shape_checks_enabled() -> bool:
    """Whether the paper's qualitative shape assertions should run.

    The protocol-comparison shapes (who wins, how gaps move) need enough
    simulated time to escape warm-up noise; the CI benchmark smoke runs with
    a tiny ``REPRO_BENCH_DURATION_US`` purely to measure simulator
    performance, where a marginal shape flip is meaningless.
    """
    return SETTINGS.duration_us >= 50_000


# ----------------------------------------------------------------------
# Machine-readable benchmark output (BENCH_<figure>.json)
# ----------------------------------------------------------------------
@dataclass
class _BenchRecorder:
    """Accumulates per-datapoint records until a figure flushes them."""

    pending: List[Dict] = field(default_factory=list)
    by_figure: Dict[str, List[Dict]] = field(default_factory=dict)

    def record(self, result: ExperimentResult) -> None:
        metrics = result.metrics
        wall = float(metrics.extra.get("wall_seconds", 0.0))
        events = float(metrics.extra.get("sim_events", 0.0))
        point = {
            "protocol": result.protocol,
            "n_nodes": result.config.n_nodes,
            "n_keys": result.config.n_keys,
            "replication_degree": result.config.replication_degree,
            "clients_per_node": result.config.clients_per_node,
            "read_only_fraction": result.workload.read_only_fraction,
            "seed": result.config.seed,
            "duration_us": metrics.measured_duration_us,
            "committed": metrics.committed,
            "aborted": metrics.aborted,
            "abort_rate": round(metrics.abort_rate, 4),
            "throughput_ktps": round(metrics.throughput_ktps, 3),
            "latency_mean_ms": round(metrics.latency.mean_ms, 4),
            "latency_p50_ms": round(metrics.latency.p50_us / 1_000.0, 4),
            "latency_p99_ms": round(metrics.latency.p99_us / 1_000.0, 4),
            "sim_events": int(events),
            "wall_seconds": round(wall, 4),
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "committed_txns_per_wall_sec": (round(metrics.committed / wall) if wall > 0 else 0),
        }
        # Clock-metadata accounting (present whenever the run shipped
        # clock-bearing messages; see run_experiment).
        for field_name in (
            "clock_bytes_mean",
            "clock_bytes_max",
            "clock_bytes_per_msg",
            "clock_compression_ratio",
        ):
            value = metrics.extra.get(field_name)
            if value is not None:
                point[field_name] = value
        # Traffic-plane accounting (present when the config carried a
        # traffic plan, i.e. the run was open-loop; see
        # repro.workload.openloop).
        for field_name in (
            "open_loop",
            "offered",
            "offered_tps",
            "goodput_tps",
            "dropped",
            "timed_out",
            "queue_depth_max",
            "queue_depth_mean",
        ):
            value = metrics.extra.get(field_name)
            if value is not None:
                point[field_name] = value
        # Parallel-engine accounting (present when the point ran on the
        # node-sharded conservative engine; see repro.harness.parallel).
        # ``engine`` is recorded explicitly so regression gates can match
        # serial and parallel datapoints separately.
        if metrics.extra.get("parallel_shards") is not None:
            point["engine"] = "parallel"
            for field_name in (
                "parallel_shards",
                "parallel_sync_rounds",
                "parallel_null_messages",
                "parallel_cross_shard_messages",
                "parallel_shard_events_min",
                "parallel_shard_events_max",
                "parallel_shard_utilization_min",
                "parallel_shard_busy_max_s",
            ):
                value = metrics.extra.get(field_name)
                if value is not None:
                    point[field_name] = value
        else:
            point["engine"] = "serial"
        # Fault-plane accounting (present when the config carried a fault
        # plan; see run_experiment and ExperimentMetrics.phases).
        for field_name in (
            "availability_min",
            "stalled_clients",
            "quiescence_leaked_writers",
            "quiescence_commit_queue",
            "fault_events",
            "recovery_us",
            # Crash-consistency verdicts (present when the point ran with
            # record_history; see ExperimentPoint / _run_point_worker).
            "consistency_ok",
            "consistency_violations",
        ):
            value = metrics.extra.get(field_name)
            if value is not None:
                point[field_name] = value
        if metrics.phases:
            point["phases"] = metrics.phases
        self.pending.append(point)

    def flush(self, figure: str) -> Dict:
        """Assign pending datapoints to ``figure`` and write its JSON file."""
        bucket = self.by_figure.setdefault(figure, [])
        bucket.extend(self.pending)
        self.pending = []
        events = sum(point["sim_events"] for point in bucket)
        wall = sum(point["wall_seconds"] for point in bucket)
        committed = sum(point["committed"] for point in bucket)
        availabilities = [
            point["availability_min"]
            for point in bucket
            if point.get("availability_min") is not None
        ]
        checked = [
            point["consistency_ok"]
            for point in bucket
            if point.get("consistency_ok") is not None
        ]
        parallel_points = [
            point for point in bucket if point.get("engine") == "parallel"
        ]
        parallel_wall = sum(point["wall_seconds"] for point in parallel_points)
        parallel_events = sum(point["sim_events"] for point in parallel_points)
        payload = {
            "figure": figure,
            "schema_version": 1,
            "settings": {
                "node_counts": list(SETTINGS.node_counts),
                "n_keys": SETTINGS.n_keys,
                "clients_per_node": SETTINGS.clients_per_node,
                "duration_us": SETTINGS.duration_us,
                "seed": SETTINGS.seed,
            },
            "totals": {
                "datapoints": len(bucket),
                "sim_events": events,
                "wall_seconds": round(wall, 4),
                "events_per_sec": round(events / wall) if wall > 0 else 0,
                "committed_txns": committed,
                "committed_txns_per_wall_sec": (round(committed / wall) if wall > 0 else 0),
                # Fault-plane floors (absent for fail-free figures): the
                # worst per-point availability, and whether every checked
                # point kept its protocol's consistency contract.
                **(
                    {"availability_min": round(min(availabilities), 4)}
                    if availabilities
                    else {}
                ),
                **(
                    {"consistency_ok_all": float(all(flag == 1.0 for flag in checked))}
                    if checked
                    else {}
                ),
                # Coverage floor: the widest cluster the figure measured.
                # check_regression fails if a later run silently shrinks it
                # (e.g. the >=256-server parallel points dropping out).
                **(
                    {"max_n_nodes": max(point["n_nodes"] for point in bucket)}
                    if bucket
                    else {}
                ),
                # Parallel-engine rollup (absent for all-serial figures):
                # how many points ran on the node-sharded engine and the
                # events/sec over just those, gated separately so a
                # regression in the parallel path cannot hide behind fast
                # serial points.
                **(
                    {
                        "parallel_datapoints": len(parallel_points),
                        "parallel_sim_events": parallel_events,
                        "parallel_wall_seconds": round(parallel_wall, 4),
                        "parallel_events_per_sec": (
                            round(parallel_events / parallel_wall)
                            if parallel_wall > 0
                            else 0
                        ),
                    }
                    if parallel_points
                    else {}
                ),
            },
            "datapoints": bucket,
        }
        out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{figure}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return payload


RECORDER = _BenchRecorder()


def flush_bench_json(figure: str) -> Dict:
    """Write ``BENCH_<figure>.json`` from the datapoints recorded so far."""
    return RECORDER.flush(figure)


# ----------------------------------------------------------------------
# Sweep helpers
# ----------------------------------------------------------------------
def _point_config(
    n_nodes: int,
    replication_degree: int,
    clients_per_node: Optional[int],
    n_keys: Optional[int],
    seed_offset: int,
) -> ClusterConfig:
    return ClusterConfig(
        n_nodes=n_nodes,
        n_keys=n_keys if n_keys is not None else SETTINGS.n_keys,
        replication_degree=min(replication_degree, n_nodes),
        clients_per_node=(
            clients_per_node
            if clients_per_node is not None
            else SETTINGS.clients_per_node
        ),
        seed=SETTINGS.seed + seed_offset,
    )


def run_point(
    protocol: str,
    n_nodes: int,
    read_only_fraction: float,
    replication_degree: int = 2,
    read_only_txn_keys: int = 2,
    locality_fraction: float = 0.0,
    clients_per_node: int | None = None,
    n_keys: int | None = None,
    seed_offset: int = 0,
) -> ExperimentMetrics:
    """Run one datapoint (in-process) and return its metrics."""
    config = _point_config(n_nodes, replication_degree, clients_per_node, n_keys, seed_offset)
    workload = WorkloadConfig(
        read_only_fraction=read_only_fraction,
        read_only_txn_keys=read_only_txn_keys,
        locality_fraction=locality_fraction,
    )
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=SETTINGS.duration_us,
        warmup_us=SETTINGS.warmup_us,
    )
    RECORDER.record(result)
    return result.metrics


def throughput_sweep(
    protocols: Sequence[str],
    node_counts: Sequence[int],
    read_only_fraction: float,
    replication_degree: int = 2,
    read_only_txn_keys: int = 2,
    locality_fraction: float = 0.0,
    clients_per_node: int | None = None,
    n_keys: int | None = None,
    seed_offset: int = 0,
) -> Dict[str, Dict[int, ExperimentMetrics]]:
    """Sweep protocols x node counts at one read-only fraction.

    The datapoints are independent simulations and run in parallel across
    CPU cores (``REPRO_BENCH_PARALLEL`` controls the fan-out); results are
    identical to a serial sweep.
    """
    workload = WorkloadConfig(
        read_only_fraction=read_only_fraction,
        read_only_txn_keys=read_only_txn_keys,
        locality_fraction=locality_fraction,
    )
    points = [
        ExperimentPoint(
            protocol=protocol,
            config=_point_config(
                n_nodes, replication_degree, clients_per_node, n_keys, seed_offset
            ),
            workload=workload,
            duration_us=SETTINGS.duration_us,
            warmup_us=SETTINGS.warmup_us,
            label=(protocol, n_nodes),
        )
        for protocol in protocols
        for n_nodes in node_counts
    ]
    results: Dict[str, Dict[int, ExperimentMetrics]] = {p: {} for p in protocols}
    for (protocol, n_nodes), result in run_points(points):
        RECORDER.record(result)
        results[protocol][n_nodes] = result.metrics
    return results


def ktps_rows(sweep: Dict[str, Dict[int, ExperimentMetrics]]) -> Dict[str, list]:
    """Throughput rows (KTx/s) keyed by protocol for format_table."""
    rows = {}
    for protocol, by_nodes in sweep.items():
        rows[protocol] = [metrics.throughput_ktps for metrics in by_nodes.values()]
    return rows


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark as a single-shot measurement."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
