"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark follows the same pattern:

1. sweep the figure's parameters at a scaled-down size (see
   :class:`repro.harness.experiments.BenchmarkScale`) so the whole suite runs
   in minutes of wall-clock time on a laptop;
2. print the table of committed-transactions-per-second series that mirrors
   the paper's figure;
3. assert the qualitative *shape* the paper reports (who wins, how the gap
   moves) — absolute numbers are not comparable because the substrate is a
   simulator rather than the authors' CloudLab testbed;
4. register the sweep with ``pytest-benchmark`` (one round, one iteration) so
   ``pytest benchmarks/ --benchmark-only`` reports the wall-clock cost of
   regenerating each figure.

Environment knobs:

* ``REPRO_BENCH_DURATION_US`` — simulated microseconds per datapoint
  (default 80 000).
* ``REPRO_BENCH_NODES`` — comma-separated node counts for the sweeps
  (default ``3,6``).
* ``REPRO_BENCH_KEYS`` — number of keys (default 400).
* ``REPRO_BENCH_CLIENTS`` — closed-loop clients per node (default 3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.metrics import ExperimentMetrics
from repro.harness.runner import run_experiment


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_ints(name: str, default: Tuple[int, ...]) -> Tuple[int, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(",") if part)


@dataclass(frozen=True)
class BenchSettings:
    """Scaled-down sweep parameters used by the benchmark suite."""

    node_counts: Tuple[int, ...] = _env_ints("REPRO_BENCH_NODES", (3, 6))
    n_keys: int = _env_int("REPRO_BENCH_KEYS", 400)
    clients_per_node: int = _env_int("REPRO_BENCH_CLIENTS", 3)
    duration_us: float = float(_env_int("REPRO_BENCH_DURATION_US", 80_000))
    warmup_us: float = 15_000.0
    seed: int = 2024


SETTINGS = BenchSettings()


def run_point(
    protocol: str,
    n_nodes: int,
    read_only_fraction: float,
    replication_degree: int = 2,
    read_only_txn_keys: int = 2,
    locality_fraction: float = 0.0,
    clients_per_node: int | None = None,
    n_keys: int | None = None,
    seed_offset: int = 0,
) -> ExperimentMetrics:
    """Run one datapoint and return its metrics."""
    config = ClusterConfig(
        n_nodes=n_nodes,
        n_keys=n_keys if n_keys is not None else SETTINGS.n_keys,
        replication_degree=min(replication_degree, n_nodes),
        clients_per_node=(
            clients_per_node
            if clients_per_node is not None
            else SETTINGS.clients_per_node
        ),
        seed=SETTINGS.seed + seed_offset,
    )
    workload = WorkloadConfig(
        read_only_fraction=read_only_fraction,
        read_only_txn_keys=read_only_txn_keys,
        locality_fraction=locality_fraction,
    )
    result = run_experiment(
        protocol,
        config,
        workload,
        duration_us=SETTINGS.duration_us,
        warmup_us=SETTINGS.warmup_us,
    )
    return result.metrics


def throughput_sweep(
    protocols: Sequence[str],
    node_counts: Sequence[int],
    read_only_fraction: float,
    **kwargs,
) -> Dict[str, Dict[int, ExperimentMetrics]]:
    """Sweep protocols x node counts at one read-only fraction."""
    results: Dict[str, Dict[int, ExperimentMetrics]] = {}
    for protocol in protocols:
        results[protocol] = {}
        for n_nodes in node_counts:
            results[protocol][n_nodes] = run_point(
                protocol, n_nodes, read_only_fraction, **kwargs
            )
    return results


def ktps_rows(
    sweep: Dict[str, Dict[int, ExperimentMetrics]]
) -> Dict[str, list]:
    """Throughput rows (KTx/s) keyed by protocol for format_table."""
    rows = {}
    for protocol, by_nodes in sweep.items():
        rows[protocol] = [metrics.throughput_ktps for metrics in by_nodes.values()]
    return rows


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark as a single-shot measurement."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
