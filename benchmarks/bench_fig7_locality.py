"""Figure 7: throughput with 80 % read-only transactions and 50 % locality.

Half of the accessed keys are drawn from the keys replicated on the client's
node, which raises contention (fewer distinct keys per client) while letting
read-only transactions hit their local replica.  Expected shape: same
ordering as Figure 3(c) — Walter ahead, SSS next, 2PC-baseline last with a
wide margin (paper: SSS more than 3.5x faster than 2PC-baseline) — but SSS
does not close the gap to Walter the way it does without locality, because
of contention on the snapshot queues of the locally popular keys.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SETTINGS, ktps_rows, run_once, throughput_sweep
from repro.harness.reporting import format_table

PROTOCOLS = ("sss", "2pc", "walter")


@pytest.mark.benchmark(group="fig7")
def test_fig7_locality(benchmark):
    def sweep():
        return throughput_sweep(
            PROTOCOLS,
            SETTINGS.node_counts,
            read_only_fraction=0.8,
            replication_degree=2,
            locality_fraction=0.5,
        )

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            "Figure 7: throughput (KTx/s), 80% read-only, 50% locality, rf=2",
            [f"{n} nodes" for n in SETTINGS.node_counts],
            ktps_rows(results),
        )
    )

    largest = SETTINGS.node_counts[-1]
    sss = results["sss"][largest].throughput_ktps
    twopc = results["2pc"][largest].throughput_ktps
    walter = results["walter"][largest].throughput_ktps

    assert sss > twopc, "SSS must lead 2PC-baseline under locality"
    assert walter >= sss * 0.95, "Walter keeps the lead under locality"
