"""Benchmark-suite fixtures.

After every benchmark test, the datapoints it recorded through
``benchmarks.common`` are flushed into the figure's machine-readable
``BENCH_<figure>.json`` (the figure name is inferred from the module name:
``bench_fig3_throughput`` -> ``fig3``).  Re-flushing after each test keeps
the file complete even when only a subset of a figure's tests is selected.
"""

from __future__ import annotations

import re

import pytest

from benchmarks.common import RECORDER, flush_bench_json


def _figure_for_module(module_name: str) -> str:
    match = re.search(r"bench_(fig\d+[ab]?|\w+?)_", module_name + "_")
    return match.group(1) if match else module_name


@pytest.fixture(autouse=True)
def _flush_bench_datapoints(request):
    yield
    if RECORDER.pending:
        flush_bench_json(_figure_for_module(request.module.__name__))
