"""Recovery-time experiment: time-to-full-availability after a crash.

The fault-availability bench reports *per-phase* availability, which hides
how quickly a protocol climbs back to full throughput once the crashed node
restarts.  This experiment measures that directly: for each protocol the
same workload runs under a single crash-restart fault while sweeping

* the crash **duration** (how long the node is down), and
* ``crash_resubscribe_us`` (the fault-mode retry cadence that drives
  re-subscription, pre-commit replay and read-wave retries),

and the committed-transaction timestamps are binned into small windows to
find the first post-restart moment where throughput is back to
``RECOVERY_FRACTION`` of the pre-crash rate.  ``recovery_us`` (measured
from the restart instant) is the headline number per datapoint, recorded in
``BENCH_recovery.json``.

Expected shape: recovery time is dominated by the retry cadence — a node
that is down longer does not take proportionally longer to *recover* once
it is back, but a coarser ``crash_resubscribe_us`` delays every
re-subscription/replay round and stretches the climb back.

Environment: ``REPRO_BENCH_RECOVERY_DURATION_US`` overrides the per-point
duration (default: the suite-wide ``REPRO_BENCH_DURATION_US``).
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from benchmarks.common import (
    RECORDER,
    SETTINGS,
    flush_bench_json,
    run_once,
    shape_checks_enabled,
)
from repro.common.config import ClusterConfig, FaultPlan, TimeoutConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentPoint, run_points

PROTOCOLS = ("sss", "2pc")

DURATION_US = float(os.environ.get("REPRO_BENCH_RECOVERY_DURATION_US", SETTINGS.duration_us))

#: Crash durations, as fractions of the run.
CRASH_FRACTIONS = (0.10, 0.25)
#: Fault-mode retry cadences (microseconds).
RESUBSCRIBE_US = (2_000.0, 5_000.0)

CRASH_AT_FRACTION = 0.25
#: Throughput fraction of the pre-crash rate that counts as "recovered".
RECOVERY_FRACTION = 0.7
#: Width of the post-restart throughput bins.
BIN_US = 2_000.0


def recovery_time_us(commit_times, crash_at, restart_at, end):
    """First post-restart instant where throughput is back, or ``None``.

    The pre-crash committed rate over ``[0, crash_at)`` is the reference;
    post-restart commits are binned into ``BIN_US`` windows and the first
    bin reaching ``RECOVERY_FRACTION`` of the reference marks recovery
    (``recovery_us`` is that bin's start relative to the restart).
    """
    if crash_at <= 0:
        return None
    reference_rate = sum(1 for t in commit_times if t < crash_at) / crash_at
    if reference_rate <= 0:
        return None
    start = restart_at
    while start + BIN_US <= end:
        committed = sum(1 for t in commit_times if start <= t < start + BIN_US)
        if committed / BIN_US >= RECOVERY_FRACTION * reference_rate:
            return start - restart_at
        start += BIN_US
    return None


def _sweep():
    workload = WorkloadConfig(read_only_fraction=0.5)
    n_nodes = SETTINGS.node_counts[0]
    crash_at = CRASH_AT_FRACTION * DURATION_US
    points = []
    for protocol in PROTOCOLS:
        for crash_fraction in CRASH_FRACTIONS:
            for resubscribe_us in RESUBSCRIBE_US:
                crash_for = crash_fraction * DURATION_US
                config = ClusterConfig(
                    n_nodes=n_nodes,
                    n_keys=SETTINGS.n_keys,
                    replication_degree=min(2, n_nodes),
                    clients_per_node=SETTINGS.clients_per_node,
                    seed=SETTINGS.seed,
                    timeouts=replace(TimeoutConfig(), crash_resubscribe_us=resubscribe_us),
                    faults=FaultPlan.parse(
                        [f"crash node={1 % n_nodes} at={crash_at} for={crash_for}"]
                    ),
                )
                points.append(
                    ExperimentPoint(
                        protocol=protocol,
                        config=config,
                        workload=workload,
                        duration_us=DURATION_US,
                        warmup_us=0.0,
                        label=(protocol, crash_fraction, resubscribe_us),
                    )
                )
    recovery = {}
    for (protocol, crash_fraction, resubscribe_us), result in run_points(points):
        crash_for = crash_fraction * DURATION_US
        commit_times = [
            t for stats in result.clients for t in stats.commit_times_us
        ]
        recovered = recovery_time_us(
            commit_times,
            crash_at=crash_at,
            restart_at=crash_at + crash_for,
            end=DURATION_US,
        )
        if recovered is not None:
            result.metrics.extra["recovery_us"] = round(recovered, 1)
        RECORDER.record(result)
        recovery[(protocol, crash_fraction, resubscribe_us)] = {
            "recovery_us": recovered,
            "availability_min": result.metrics.extra.get("availability_min"),
            "stalled_clients": result.metrics.extra.get("stalled_clients", 0.0),
            "committed": result.metrics.committed,
        }
    return recovery


@pytest.mark.benchmark(group="recovery")
def test_recovery_time(benchmark):
    recovery = run_once(benchmark, _sweep)
    payload = flush_bench_json("recovery")
    expected = len(PROTOCOLS) * len(CRASH_FRACTIONS) * len(RESUBSCRIBE_US)
    assert payload["totals"]["datapoints"] == expected

    rows = {}
    columns = [
        f"down {int(f * 100)}% / retry {int(r / 1000)}ms"
        for f in CRASH_FRACTIONS
        for r in RESUBSCRIBE_US
    ]
    for protocol in PROTOCOLS:
        rows[protocol] = [
            (
                recovery[(protocol, f, r)]["recovery_us"] / 1000.0
                if recovery[(protocol, f, r)]["recovery_us"] is not None
                else float("nan")
            )
            for f in CRASH_FRACTIONS
            for r in RESUBSCRIBE_US
        ]
    print()
    print(
        format_table(
            f"Time to {int(RECOVERY_FRACTION * 100)}% availability after "
            f"restart (ms, {DURATION_US / 1000:.0f} ms runs)",
            columns,
            rows,
        )
    )

    # Structural invariants, valid at any duration.
    for point in recovery.values():
        assert point["committed"] > 0
        recovered = point["recovery_us"]
        if recovered is not None:
            assert 0.0 <= recovered <= DURATION_US

    if not shape_checks_enabled():
        return
    # At full duration both externally consistent protocols must actually
    # recover (the whole point of the recovery machinery), with no stalls.
    for (protocol, _f, _r), point in recovery.items():
        assert point["recovery_us"] is not None, (
            f"{protocol} never returned to "
            f"{RECOVERY_FRACTION:.0%} of its pre-crash rate"
        )
        assert point["stalled_clients"] == 0
