"""Figure 4(a): maximum attainable throughput, SSS vs 2PC-baseline.

Each datapoint sweeps the number of closed-loop clients per node and reports
the best throughput reached (the paper: "the number of clients per nodes
differs per reported datapoint").  Expected shape: SSS stays ahead, but the
2PC-baseline closes part of the gap it shows in Figure 3 because its lighter
read path leaves CPU available for more clients.
"""

from __future__ import annotations

import pytest

from benchmarks.common import RECORDER, SETTINGS, run_once
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import find_saturation_throughput

CLIENT_SWEEP = (1, 3, 6)


def _max_throughput(protocol: str, n_nodes: int) -> float:
    config = ClusterConfig(
        n_nodes=n_nodes,
        n_keys=SETTINGS.n_keys,
        replication_degree=2,
        clients_per_node=SETTINGS.clients_per_node,
        seed=SETTINGS.seed,
    )
    workload = WorkloadConfig(read_only_fraction=0.5)
    best = find_saturation_throughput(
        protocol,
        config,
        workload,
        client_counts=CLIENT_SWEEP,
        duration_us=SETTINGS.duration_us,
        warmup_us=SETTINGS.warmup_us,
    )
    RECORDER.record(best)
    return best.throughput_ktps


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_max_attainable_throughput(benchmark):
    def sweep():
        results = {}
        for protocol in ("sss", "2pc"):
            results[protocol] = {
                n: _max_throughput(protocol, n) for n in SETTINGS.node_counts
            }
        return results

    results = run_once(benchmark, sweep)
    rows = {name: list(series.values()) for name, series in results.items()}
    print()
    print(
        format_table(
            "Figure 4(a): maximum attainable throughput (KTx/s), 50% read-only",
            [f"{n} nodes" for n in SETTINGS.node_counts],
            rows,
        )
    )

    largest = SETTINGS.node_counts[-1]
    assert results["sss"][largest] > 0
    assert results["2pc"][largest] > 0
    # SSS keeps the lead at its saturation point on read-dominated mixes.
    assert results["sss"][largest] >= results["2pc"][largest] * 0.9
