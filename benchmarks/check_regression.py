"""Benchmark-regression gate for CI.

Compares the events/sec of a freshly produced ``BENCH_<figure>.json`` against
the committed baseline under ``benchmarks/baselines/`` and exits non-zero
when the current run is more than the allowed percentage slower.

Usage::

    python benchmarks/check_regression.py [--figure fig3]
        [--current-dir DIR] [--baseline-dir DIR] [--threshold-pct 25]

Environment overrides: ``REPRO_BENCH_OUT`` (current dir),
``REPRO_BENCH_REGRESSION_PCT`` (threshold).

The committed baseline is calibrated for the CI runner class (see the
``provenance`` field inside the baseline file); refresh it deliberately with
``--write-baseline`` when the runner class or the expected performance level
changes, never to paper over a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", default="fig3")
    parser.add_argument(
        "--current-dir", default=os.environ.get("REPRO_BENCH_OUT", ".")
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
    )
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", 25.0)),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="Copy the current totals into the baseline file and exit.",
    )
    args = parser.parse_args()

    current_path = os.path.join(args.current_dir, f"BENCH_{args.figure}.json")
    baseline_path = os.path.join(args.baseline_dir, f"BENCH_{args.figure}.json")

    if not os.path.exists(current_path):
        print(
            f"FAIL: no benchmark output at {current_path} — did the benchmark "
            f"run emit BENCH_{args.figure}.json (REPRO_BENCH_OUT)?",
            file=sys.stderr,
        )
        return 1
    current = _load(current_path)
    current_eps = current["totals"]["events_per_sec"]
    current_tps = current["totals"]["committed_txns_per_wall_sec"]

    if args.write_baseline:
        os.makedirs(args.baseline_dir, exist_ok=True)
        payload = {
            "figure": args.figure,
            "provenance": "written by check_regression.py --write-baseline",
            "totals": current["totals"],
        }
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"baseline written: {baseline_path} (events/sec={current_eps})")
        return 0

    if not os.path.exists(baseline_path):
        print(f"no committed baseline at {baseline_path}; skipping gate")
        return 0

    baseline = _load(baseline_path)
    baseline_eps = baseline["totals"]["events_per_sec"]
    floor = baseline_eps * (1.0 - args.threshold_pct / 100.0)

    print(
        f"figure={args.figure}  baseline events/sec={baseline_eps}  "
        f"current events/sec={current_eps}  committed txns/wall-sec={current_tps}  "
        f"allowed floor={floor:.0f} (-{args.threshold_pct:.0f}%)"
    )
    if current_eps < floor:
        print(
            f"FAIL: events/sec regressed by more than {args.threshold_pct:.0f}% "
            f"({current_eps} < {floor:.0f})",
            file=sys.stderr,
        )
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
