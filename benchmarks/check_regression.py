"""Benchmark-regression gate for CI.

Compares the events/sec of freshly produced ``BENCH_<figure>.json`` files
against the committed baselines under ``benchmarks/baselines/`` and exits
non-zero when any checked figure is more than the allowed percentage slower.

Figures whose baseline carries ``totals.memory_high_water_bytes`` (the
``scale`` figure) are additionally gated on memory: the current high-water
mark must stay below the baseline plus the allowed memory headroom.
Figures whose baseline carries ``totals.availability_min`` (the ``faults``
figure) are additionally gated on availability: the current worst per-point
availability must not fall more than the availability threshold below the
baseline's, and a baseline asserting ``consistency_ok_all`` requires the
current run to keep it.  Speed and availability are floors, memory is a
ceiling.  Baselines carrying ``totals.max_n_nodes`` pin cluster-size
coverage (the current run may not measure a narrower cluster), and
baselines with ``totals.parallel_datapoints`` additionally gate the
node-sharded engine's ``parallel_events_per_sec`` as its own floor, so a
parallel-path regression cannot hide behind fast serial points.

Usage::

    python benchmarks/check_regression.py [--figures fig3 scaling]
        [--current-dir DIR] [--baseline-dir DIR] [--threshold-pct 25]
        [--memory-threshold-pct 50] [--availability-threshold-pct 40]

(``--figure X`` remains as an alias for ``--figures X``.)

Environment overrides: ``REPRO_BENCH_OUT`` (current dir),
``REPRO_BENCH_REGRESSION_PCT`` (speed threshold),
``REPRO_BENCH_MEMORY_PCT`` (memory threshold),
``REPRO_BENCH_AVAILABILITY_PCT`` (availability threshold).

The committed baselines are calibrated for the CI runner class (see the
``provenance`` field inside each baseline file); refresh them deliberately
with ``--write-baseline`` when the runner class or the expected performance
level changes, never to paper over a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_figure(figure: str, args) -> int:
    """Gate one figure; returns 0 when OK (or no baseline), 1 on failure."""
    current_path = os.path.join(args.current_dir, f"BENCH_{figure}.json")
    baseline_path = os.path.join(args.baseline_dir, f"BENCH_{figure}.json")

    if not os.path.exists(current_path):
        print(
            f"FAIL: no benchmark output at {current_path} — did the benchmark "
            f"run emit BENCH_{figure}.json (REPRO_BENCH_OUT)?",
            file=sys.stderr,
        )
        return 1
    current = _load(current_path)
    current_eps = current["totals"]["events_per_sec"]
    current_tps = current["totals"]["committed_txns_per_wall_sec"]

    if args.write_baseline:
        os.makedirs(args.baseline_dir, exist_ok=True)
        payload = {
            "figure": figure,
            "provenance": "written by check_regression.py --write-baseline",
            "totals": current["totals"],
        }
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"baseline written: {baseline_path} (events/sec={current_eps})")
        return 0

    if not os.path.exists(baseline_path):
        print(f"no committed baseline at {baseline_path}; skipping gate")
        return 0

    baseline = _load(baseline_path)
    baseline_eps = baseline["totals"]["events_per_sec"]
    floor = baseline_eps * (1.0 - args.threshold_pct / 100.0)

    print(
        f"figure={figure}  baseline events/sec={baseline_eps}  "
        f"current events/sec={current_eps}  committed txns/wall-sec={current_tps}  "
        f"allowed floor={floor:.0f} (-{args.threshold_pct:.0f}%)"
    )
    if current_eps < floor:
        print(
            f"FAIL: {figure} events/sec regressed by more than "
            f"{args.threshold_pct:.0f}% ({current_eps} < {floor:.0f})",
            file=sys.stderr,
        )
        return 1

    baseline_mem = baseline["totals"].get("memory_high_water_bytes")
    if baseline_mem is not None:
        current_mem = current["totals"].get("memory_high_water_bytes")
        if current_mem is None:
            print(
                f"FAIL: {figure} baseline pins memory_high_water_bytes but the "
                f"current run did not report one",
                file=sys.stderr,
            )
            return 1
        ceiling = baseline_mem * (1.0 + args.memory_threshold_pct / 100.0)
        print(
            f"figure={figure}  baseline memory={baseline_mem}  "
            f"current memory={current_mem}  allowed ceiling={ceiling:.0f} "
            f"(+{args.memory_threshold_pct:.0f}%)"
        )
        if current_mem > ceiling:
            print(
                f"FAIL: {figure} memory high-water mark grew by more than "
                f"{args.memory_threshold_pct:.0f}% ({current_mem} > {ceiling:.0f})",
                file=sys.stderr,
            )
            return 1

    baseline_avail = baseline["totals"].get("availability_min")
    if baseline_avail is not None:
        current_avail = current["totals"].get("availability_min")
        if current_avail is None:
            print(
                f"FAIL: {figure} baseline pins availability_min but the "
                f"current run did not report one",
                file=sys.stderr,
            )
            return 1
        avail_floor = baseline_avail * (1.0 - args.availability_threshold_pct / 100.0)
        print(
            f"figure={figure}  baseline availability_min={baseline_avail}  "
            f"current availability_min={current_avail}  allowed floor="
            f"{avail_floor:.4f} (-{args.availability_threshold_pct:.0f}%)"
        )
        if current_avail < avail_floor:
            print(
                f"FAIL: {figure} worst-point availability fell by more than "
                f"{args.availability_threshold_pct:.0f}% "
                f"({current_avail} < {avail_floor:.4f})",
                file=sys.stderr,
            )
            return 1

    baseline_max_nodes = baseline["totals"].get("max_n_nodes")
    if baseline_max_nodes is not None:
        current_max_nodes = current["totals"].get("max_n_nodes", 0)
        if current_max_nodes < baseline_max_nodes:
            print(
                f"FAIL: {figure} cluster-size coverage shrank — the baseline "
                f"measured up to {baseline_max_nodes} servers, the current run "
                f"only up to {current_max_nodes}",
                file=sys.stderr,
            )
            return 1

    if baseline["totals"].get("parallel_datapoints"):
        current_parallel = current["totals"].get("parallel_datapoints", 0)
        if not current_parallel:
            print(
                f"FAIL: {figure} baseline includes parallel-engine datapoints "
                f"but the current run produced none",
                file=sys.stderr,
            )
            return 1
        baseline_peps = baseline["totals"].get("parallel_events_per_sec", 0)
        current_peps = current["totals"].get("parallel_events_per_sec", 0)
        parallel_floor = baseline_peps * (1.0 - args.threshold_pct / 100.0)
        print(
            f"figure={figure}  baseline parallel events/sec={baseline_peps}  "
            f"current parallel events/sec={current_peps}  allowed floor="
            f"{parallel_floor:.0f} (-{args.threshold_pct:.0f}%)"
        )
        if current_peps < parallel_floor:
            print(
                f"FAIL: {figure} parallel-engine events/sec regressed by more "
                f"than {args.threshold_pct:.0f}% ({current_peps} < "
                f"{parallel_floor:.0f})",
                file=sys.stderr,
            )
            return 1

    if baseline["totals"].get("consistency_ok_all") == 1.0:
        if current["totals"].get("consistency_ok_all") != 1.0:
            print(
                f"FAIL: {figure} baseline asserts every point keeps its "
                f"consistency contract, but the current run reported "
                f"consistency_ok_all="
                f"{current['totals'].get('consistency_ok_all')!r}",
                file=sys.stderr,
            )
            return 1

    print(f"OK: {figure} within the regression budget")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures",
        nargs="+",
        default=None,
        help="Figures to gate (default: fig3).",
    )
    parser.add_argument(
        "--figure",
        default=None,
        help="Single-figure alias for --figures.",
    )
    parser.add_argument("--current-dir", default=os.environ.get("REPRO_BENCH_OUT", "."))
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
    )
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", 25.0)),
    )
    parser.add_argument(
        "--memory-threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_MEMORY_PCT", 50.0)),
    )
    parser.add_argument(
        "--availability-threshold-pct",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_AVAILABILITY_PCT", 40.0)),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="Copy the current totals into the baseline file(s) and exit.",
    )
    args = parser.parse_args()

    figures = list(args.figures or [])
    if args.figure:
        figures.append(args.figure)
    if not figures:
        figures = ["fig3"]

    status = 0
    for figure in figures:
        status |= check_figure(figure, args)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
