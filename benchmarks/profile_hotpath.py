"""Profile one Figure-3 datapoint so perf PRs start from data, not guesses.

Runs a single SSS experiment (the fig3 shape: 50 % read-only, rf = 2) under
``cProfile`` and prints the top functions by cumulative and by self time.
Keep the machine otherwise idle; background load skews everything.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py
        [--nodes 6] [--duration-us 60000] [--top 30]
        [--sort cumulative|tottime] [--out PROFILE.pstats]
        [--engine serial|parallel] [--shards N] [--profile-shard K]

``--out`` additionally dumps the raw stats for ``snakeviz``/``pstats``
post-processing.

With ``--engine parallel`` the run uses the node-sharded conservative
engine: every shard worker dumps its own ``shard-<i>.pstats`` (via the
``REPRO_PARALLEL_PROFILE_DIR`` hook in :mod:`repro.harness.parallel`), the
rankings printed come from the shard chosen with ``--profile-shard``
(default 0), and the parallel-overhead counters — sync rounds, null
messages, cross-shard messages, per-shard utilization — are printed so the
conservative-synchronization cost is observable, not guessed.  The
in-process profile (``--out``) then covers the coordinator: routing,
pickling and barrier bookkeeping.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import tempfile
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--keys", type=int, default=400)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--duration-us", type=float, default=60_000.0)
    parser.add_argument("--warmup-us", type=float, default=15_000.0)
    parser.add_argument("--read-only", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--protocol", default="sss")
    parser.add_argument("--top", type=int, default=30)
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default=None,
        help="Print only one ranking instead of both.",
    )
    parser.add_argument("--out", default=None, help="Dump raw pstats here.")
    parser.add_argument(
        "--engine",
        choices=("serial", "parallel"),
        default="serial",
        help="Event loop to profile; 'parallel' is the node-sharded engine.",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="Shard count for --engine parallel (default: engine default).",
    )
    parser.add_argument(
        "--profile-shard",
        type=int,
        default=0,
        help="Which shard's worker profile to print (--engine parallel).",
    )
    parser.add_argument(
        "--shard-profile-dir",
        default=None,
        help="Keep per-shard pstats dumps here (default: a temp directory).",
    )
    args = parser.parse_args()

    # Import after argparse so --help stays fast.
    from repro.common.config import ClusterConfig, WorkloadConfig
    from repro.harness.runner import run_experiment

    config = ClusterConfig(
        n_nodes=args.nodes,
        n_keys=args.keys,
        replication_degree=2,
        clients_per_node=args.clients,
        seed=args.seed,
    )
    workload = WorkloadConfig(read_only_fraction=args.read_only, read_only_txn_keys=2)

    shard_dir = None
    if args.engine == "parallel":
        shard_dir = args.shard_profile_dir or tempfile.mkdtemp(prefix="repro-shard-prof-")
        os.environ["REPRO_PARALLEL_PROFILE_DIR"] = shard_dir

    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    try:
        result = run_experiment(
            args.protocol,
            config,
            workload,
            duration_us=args.duration_us,
            warmup_us=args.warmup_us,
            engine=args.engine,
            shards=args.shards if args.engine == "parallel" else None,
        )
    finally:
        profiler.disable()
        os.environ.pop("REPRO_PARALLEL_PROFILE_DIR", None)
    wall = time.perf_counter() - wall_start

    metrics = result.metrics
    events = metrics.extra.get("sim_events", 0.0)
    print(
        f"{args.protocol} n={args.nodes} engine={args.engine} "
        f"duration={args.duration_us:.0f}us: "
        f"wall={wall:.2f}s (under cProfile, ~2-3x slower than bare), "
        f"events={events:.0f}, committed={metrics.committed}, "
        f"ktps={metrics.throughput_ktps:.2f}"
    )
    if args.engine == "parallel":
        print(
            f"parallel: shards={metrics.extra['parallel_shards']}, "
            f"sync_rounds={metrics.extra['parallel_sync_rounds']}, "
            f"null_messages={metrics.extra['parallel_null_messages']}, "
            f"cross_shard_messages={metrics.extra['parallel_cross_shard_messages']}, "
            f"shard_events=[{metrics.extra['parallel_shard_events_min']:.0f}, "
            f"{metrics.extra['parallel_shard_events_max']:.0f}], "
            f"shard_utilization_min={metrics.extra['parallel_shard_utilization_min']}"
        )

    if args.engine == "parallel":
        shard_path = os.path.join(shard_dir, f"shard-{args.profile_shard}.pstats")
        if os.path.exists(shard_path):
            print(f"\nper-shard profiles in {shard_dir}; printing shard {args.profile_shard}")
            stats = pstats.Stats(shard_path)
        else:
            # Inline fallback (shards=1 runs in-process): the coordinator
            # profile below already contains the whole event loop.
            print(f"\nno worker profile at {shard_path}; printing the in-process profile")
            stats = pstats.Stats(profiler)
    else:
        stats = pstats.Stats(profiler)
    for sort in [args.sort] if args.sort else ["cumulative", "tottime"]:
        print(f"\n=== top {args.top} by {sort} ===")
        stats.sort_stats(sort).print_stats(args.top)
    if args.out:
        pstats.Stats(profiler).dump_stats(args.out)
        print(f"coordinator/in-process raw stats written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
