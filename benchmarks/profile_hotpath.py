"""Profile one Figure-3 datapoint so perf PRs start from data, not guesses.

Runs a single SSS experiment (the fig3 shape: 50 % read-only, rf = 2) under
``cProfile`` and prints the top functions by cumulative and by self time.
Keep the machine otherwise idle; background load skews everything.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py
        [--nodes 6] [--duration-us 60000] [--top 30]
        [--sort cumulative|tottime] [--out PROFILE.pstats]

``--out`` additionally dumps the raw stats for ``snakeviz``/``pstats``
post-processing.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--keys", type=int, default=400)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--duration-us", type=float, default=60_000.0)
    parser.add_argument("--warmup-us", type=float, default=15_000.0)
    parser.add_argument("--read-only", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--protocol", default="sss")
    parser.add_argument("--top", type=int, default=30)
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default=None,
        help="Print only one ranking instead of both.",
    )
    parser.add_argument("--out", default=None, help="Dump raw pstats here.")
    args = parser.parse_args()

    # Import after argparse so --help stays fast.
    from repro.common.config import ClusterConfig, WorkloadConfig
    from repro.harness.runner import run_experiment

    config = ClusterConfig(
        n_nodes=args.nodes,
        n_keys=args.keys,
        replication_degree=2,
        clients_per_node=args.clients,
        seed=args.seed,
    )
    workload = WorkloadConfig(read_only_fraction=args.read_only, read_only_txn_keys=2)

    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    result = run_experiment(
        args.protocol,
        config,
        workload,
        duration_us=args.duration_us,
        warmup_us=args.warmup_us,
    )
    profiler.disable()
    wall = time.perf_counter() - wall_start

    metrics = result.metrics
    events = metrics.extra.get("sim_events", 0.0)
    print(
        f"{args.protocol} n={args.nodes} duration={args.duration_us:.0f}us: "
        f"wall={wall:.2f}s (under cProfile, ~2-3x slower than bare), "
        f"events={events:.0f}, committed={metrics.committed}, "
        f"ktps={metrics.throughput_ktps:.2f}"
    )

    stats = pstats.Stats(profiler)
    for sort in ([args.sort] if args.sort else ["cumulative", "tottime"]):
        print(f"\n=== top {args.top} by {sort} ===")
        stats.sort_stats(sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
