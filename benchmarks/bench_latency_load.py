"""Offered load vs. latency: the open-loop curve the paper never drew.

Figures 4(a)/4(b) report closed-loop saturation points — every client
re-issues on completion, so the system is only ever observed *at* its
operating limit.  This benchmark drives all four protocols with open-loop
Poisson arrivals over a geometric ladder of offered rates, from well below
saturation to well past it, and records the classic load-latency curve:
goodput tracks offered load (±10 %) until the protocol saturates, then
goodput flattens while p50/p99 latency inflects by orders of magnitude and
the bounded admission queue starts shedding load.

What the sweep pins (and CI re-checks at tiny duration for simulator
performance only):

* **below saturation** goodput matches offered load within 10 % for every
  protocol — the open-loop plumbing neither loses nor invents work;
* **every protocol saturates** somewhere inside the ladder — past that
  point goodput stops tracking and p99 latency has inflected (>= 2x its
  low-load value, in practice orders of magnitude);
* the saturation ordering matches the closed-loop figures: Walter (lossy
  asynchronous propagation) > ROCOCO (rf=1) > SSS > 2PC-baseline.

Emits ``BENCH_latency.json`` with per-point offered/goodput/latency
percentiles; the committed baseline under ``benchmarks/baselines/`` gates
the simulator's events/sec in CI like every other figure.

Environment knobs:

* ``REPRO_BENCH_LOAD_RATES`` — comma-separated offered rates in tps
  (default ``4000,8000,16000,32000,64000,128000,256000``);
* ``REPRO_BENCH_LOAD_DURATION_US`` — per-point duration (default: the
  suite-wide ``REPRO_BENCH_DURATION_US``); warm-up is 25 % of it.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.common import (
    RECORDER,
    SETTINGS,
    flush_bench_json,
    run_once,
    shape_checks_enabled,
)
from repro.common.config import ClusterConfig, TrafficPlan, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentPoint, run_points

#: (protocol, replication degree) — ROCOCO runs without replication, as in
#: the paper's Figure 6 configuration.
PROTOCOLS = (("sss", 2), ("2pc", 2), ("walter", 2), ("rococo", 1))

RATES = tuple(
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_LOAD_RATES", "4000,8000,16000,32000,64000,128000,256000"
    ).split(",")
    if part
)

DURATION_US = float(os.environ.get("REPRO_BENCH_LOAD_DURATION_US", SETTINGS.duration_us))
WARMUP_US = 0.25 * DURATION_US

#: Tracking tolerance below saturation (acceptance: +-10 %).
TRACKING_TOLERANCE = 0.10


def _sweep():
    n_nodes = SETTINGS.node_counts[0]
    workload = WorkloadConfig(read_only_fraction=0.5)
    points = [
        ExperimentPoint(
            protocol=protocol,
            config=ClusterConfig(
                n_nodes=n_nodes,
                n_keys=SETTINGS.n_keys,
                replication_degree=min(replication_degree, n_nodes),
                clients_per_node=0,
                seed=SETTINGS.seed,
                traffic=TrafficPlan.parse([f"poisson rate={rate}"]),
            ),
            workload=workload,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            label=(protocol, rate),
        )
        for protocol, replication_degree in PROTOCOLS
        for rate in RATES
    ]
    curves = {}
    for (protocol, rate), result in run_points(points):
        RECORDER.record(result)
        metrics = result.metrics
        curves[(protocol, rate)] = {
            "offered_tps": metrics.extra["offered_tps"],
            "goodput_tps": metrics.extra["goodput_tps"],
            "dropped": metrics.extra["dropped"],
            "timed_out": metrics.extra["timed_out"],
            "p50_us": metrics.latency.p50_us,
            "p99_us": metrics.latency.p99_us,
        }
    return curves


def _saturation_index(curve) -> int:
    """First ladder index where goodput stops tracking offered load."""
    for index, point in enumerate(curve):
        if point["goodput_tps"] < (1.0 - TRACKING_TOLERANCE) * point["offered_tps"]:
            return index
    return len(curve)


@pytest.mark.benchmark(group="latency")
def test_latency_vs_offered_load(benchmark):
    curves = run_once(benchmark, _sweep)
    payload = flush_bench_json("latency")
    assert payload["totals"]["datapoints"] == len(PROTOCOLS) * len(RATES)

    goodput_rows = {}
    p99_rows = {}
    for protocol, _rf in PROTOCOLS:
        series = [curves[(protocol, rate)] for rate in RATES]
        goodput_rows[protocol] = [point["goodput_tps"] / 1_000.0 for point in series]
        p99_rows[protocol] = [point["p99_us"] / 1_000.0 for point in series]
    columns = [f"{rate // 1000}k" for rate in RATES]
    print()
    print(
        format_table(
            f"Goodput (KTx/s) vs offered load ({SETTINGS.node_counts[0]} nodes, "
            "50% read-only, open-loop Poisson)",
            columns,
            goodput_rows,
        )
    )
    print()
    print(
        format_table(
            "p99 latency (ms) vs offered load",
            columns,
            p99_rows,
            value_format="{:.2f}",
        )
    )

    # Structural invariants, valid at any duration: the sweep is monotone
    # in offered load and every point accounts for its arrivals.
    assert list(RATES) == sorted(RATES)
    for (protocol, rate), point in curves.items():
        assert point["offered_tps"] > 0, f"{protocol}@{rate}: no arrivals"
        assert point["goodput_tps"] <= point["offered_tps"] * 1.25, (
            f"{protocol}@{rate}: goodput exceeds offered load"
        )

    if not shape_checks_enabled():
        return

    saturation_tps = {}
    for protocol, _rf in PROTOCOLS:
        curve = [curves[(protocol, rate)] for rate in RATES]
        sat = _saturation_index(curve)
        # The lowest rung must be below saturation and track offered load.
        assert sat >= 1, f"{protocol}: already saturated at {RATES[0]} tps"
        for point in curve[:sat]:
            ratio = point["goodput_tps"] / point["offered_tps"]
            assert 1.0 - TRACKING_TOLERANCE <= ratio <= 1.0 + TRACKING_TOLERANCE, (
                f"{protocol}: goodput {point['goodput_tps']} does not track "
                f"offered {point['offered_tps']} below saturation"
            )
        # The ladder must reach past saturation, and p99 must inflect there.
        assert sat < len(curve), f"{protocol}: never saturated — raise REPRO_BENCH_LOAD_RATES"
        assert curve[-1]["p99_us"] >= 2.0 * curve[0]["p99_us"], (
            f"{protocol}: p99 did not inflect past saturation "
            f"({curve[0]['p99_us']:.0f} -> {curve[-1]['p99_us']:.0f} us)"
        )
        saturation_tps[protocol] = curve[sat]["offered_tps"]

    # Saturation ordering mirrors the closed-loop figures: Walter's lossy
    # propagation rides highest, ROCOCO (rf=1) clears SSS, 2PC pays the
    # most for its read path.
    assert saturation_tps["walter"] >= saturation_tps["sss"]
    assert saturation_tps["rococo"] >= saturation_tps["sss"]
    assert saturation_tps["sss"] >= saturation_tps["2pc"]
