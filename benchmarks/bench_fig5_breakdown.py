"""Figure 5: breakdown of SSS update-transaction latency.

Each bar in the paper's figure is the begin-to-external-commit latency of
update transactions, with the inner (red) bar showing the interval between
internal commit and external commit — the time spent held in snapshot queues
waiting for concurrent read-only transactions.  The paper reports that this
interval is on average about 30 % of the total latency (and, in the text,
"less than 28 %" of the overall update latency as the average waiting time
introduced by snapshot-queuing).
"""

from __future__ import annotations

import pytest

from benchmarks.common import SETTINGS, run_once, run_point
from repro.harness.reporting import format_table

CLIENT_COUNTS = (1, 3, 5, 10)


@pytest.mark.benchmark(group="fig5")
def test_fig5_latency_breakdown(benchmark):
    n_nodes = SETTINGS.node_counts[-1]

    def sweep():
        rows = {"total_ms": [], "internal_ms": [], "precommit_wait_ms": [], "wait_fraction": []}
        for clients in CLIENT_COUNTS:
            metrics = run_point(
                "sss",
                n_nodes,
                read_only_fraction=0.5,
                clients_per_node=clients,
            )
            rows["total_ms"].append(metrics.update_latency.mean_ms)
            rows["internal_ms"].append(metrics.internal_latency.mean_ms)
            rows["precommit_wait_ms"].append(metrics.precommit_wait.mean_ms)
            rows["wait_fraction"].append(metrics.precommit_fraction)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            f"Figure 5: SSS update-transaction latency breakdown, {n_nodes} nodes, "
            "50% read-only",
            [f"{c} clients" for c in CLIENT_COUNTS],
            rows,
            value_format="{:.3f}",
        )
    )

    # The snapshot-queue wait must be a substantial but minority share of the
    # total update latency (paper: ~30%).  Allow a generous band.
    for fraction in rows["wait_fraction"]:
        assert 0.0 <= fraction < 0.75
    mean_fraction = sum(rows["wait_fraction"]) / len(rows["wait_fraction"])
    assert 0.05 < mean_fraction < 0.65
    # Internal + wait should approximately compose the total.
    for total, internal, wait in zip(
        rows["total_ms"], rows["internal_ms"], rows["precommit_wait_ms"]
    ):
        assert total == pytest.approx(internal + wait, rel=0.15)
