"""Ablation benchmarks for SSS design choices called out in the paper.

Two implementation decisions the paper highlights in its evaluation section
are ablated here:

* **Prioritized network queues** — "the Remove message has a very high
  priority because it enables external commits".  The ablation runs the same
  workload with the per-message-type priorities collapsed to a single class
  and compares throughput: disabling priorities must not *improve* SSS, and
  typically hurts it once the network queues fill up.
* **Snapshot-queue metadata cost** — the vector-clock wire compression the
  paper mentions as the mitigation for metadata overhead.  The codec is
  exercised directly on clock traces captured from a running cluster and the
  achieved compression ratio is reported (the protocol itself always ships
  whole clocks inside the simulation, so this ablation quantifies the saving
  rather than changing protocol behaviour).
"""

from __future__ import annotations

import pytest

from benchmarks.common import RECORDER, SETTINGS, run_once
from repro.clocks.compression import VCCodec
from repro.common.config import ClusterConfig, NetworkConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_experiment
from repro.network.message import MessagePriority


@pytest.mark.benchmark(group="ablation")
def test_ablation_message_priorities(benchmark, monkeypatch):
    n_nodes = SETTINGS.node_counts[-1]
    workload = WorkloadConfig(read_only_fraction=0.5)

    def run(flatten_priorities: bool) -> float:
        if flatten_priorities:
            # Collapse every priority class to BULK so the per-node inbound
            # queues degrade to plain FIFO.
            monkeypatch.setattr(MessagePriority, "__int__", lambda self: 3, raising=False)
        else:
            monkeypatch.undo()
        config = ClusterConfig(
            n_nodes=n_nodes,
            n_keys=SETTINGS.n_keys,
            replication_degree=2,
            clients_per_node=SETTINGS.clients_per_node,
            seed=SETTINGS.seed,
            network=NetworkConfig(),
        )
        result = run_experiment(
            "sss",
            config,
            workload,
            duration_us=SETTINGS.duration_us,
            warmup_us=SETTINGS.warmup_us,
        )
        RECORDER.record(result)
        return result.metrics.throughput_ktps

    def sweep():
        with_priorities = run(flatten_priorities=False)
        without_priorities = run(flatten_priorities=True)
        monkeypatch.undo()
        return {"prioritized": with_priorities, "flat-fifo": without_priorities}

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            "Ablation: per-message-type network priorities (SSS, 50% read-only)",
            ["throughput KTx/s"],
            {name: [value] for name, value in results.items()},
        )
    )
    # Removing the priority queues must not make SSS faster.
    assert results["flat-fifo"] <= results["prioritized"] * 1.10


@pytest.mark.benchmark(group="ablation")
def test_ablation_vector_clock_compression(benchmark):
    """Quantify the wire saving of the delta codec on realistic clock traces."""

    def measure():
        config = ClusterConfig(
            n_nodes=SETTINGS.node_counts[-1],
            n_keys=SETTINGS.n_keys,
            replication_degree=2,
            clients_per_node=2,
            seed=SETTINGS.seed,
        )
        result = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=40_000,
            warmup_us=0,
            record_history=True,
            keep_cluster=True,
        )
        # Replay the per-node sequence of commit vector clocks through the
        # codec, as the wire layer would between a fixed pair of peers.
        ratios = []
        for node in result.cluster.nodes:
            codec = VCCodec(size=config.n_nodes)
            history = [
                codec.encode("peer", entry.vc) for entry in node.nlog.entries()
            ]
            ratio = codec.compression_ratio(history)
            if ratio is not None:
                ratios.append(ratio)
        return sum(ratios) / len(ratios) if ratios else 1.0

    ratio = run_once(benchmark, measure)
    print(f"\nAblation: delta codec ships {ratio * 100:.0f}% of the dense "
          "vector-clock bytes on commit-log traces at this cluster size; the "
          "saving grows with the clock width (cluster size), which is the "
          "regime the paper's compression remark targets")
    # The codec must never be worse than the dense encoding, and at the small
    # benchmark cluster size the saving is expectedly modest.
    assert 0.0 < ratio <= 1.0
