"""Figure 6: SSS vs ROCOCO vs 2PC-baseline (no replication).

The paper disables replication for a fair comparison with ROCOCO and uses 5k
keys.  Expected shape: with a write-intensive mix (20 % read-only) ROCOCO is
slightly ahead of SSS (the paper reports SSS within ~13 %), and both are well
ahead of the 2PC-baseline; with a read-intensive mix (80 % read-only) SSS
overtakes ROCOCO (whose read-only transactions wait for conflicting writers
and can abort) and leads the 2PC-baseline by a large factor.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SETTINGS, ktps_rows, run_once, throughput_sweep
from repro.harness.reporting import format_table

PROTOCOLS = ("sss", "rococo", "2pc")


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("read_only_pct", [20, 80])
def test_fig6_no_replication(benchmark, read_only_pct):
    read_only_fraction = read_only_pct / 100.0

    def sweep():
        return throughput_sweep(
            PROTOCOLS,
            SETTINGS.node_counts,
            read_only_fraction,
            replication_degree=1,
        )

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            f"Figure 6 ({read_only_pct}% read-only): throughput (KTx/s), "
            "no replication",
            [f"{n} nodes" for n in SETTINGS.node_counts],
            ktps_rows(results),
        )
    )

    largest = SETTINGS.node_counts[-1]
    sss = results["sss"][largest].throughput_ktps
    rococo = results["rococo"][largest].throughput_ktps
    twopc = results["2pc"][largest].throughput_ktps

    if read_only_pct == 20:
        # Write-intensive: ROCOCO competitive or slightly ahead; SSS must not
        # trail it by much, and 2PC-baseline must not win.
        assert sss >= rococo * 0.75
        assert max(sss, rococo) >= twopc * 0.95
    else:
        # Read-intensive: SSS ahead of ROCOCO and clearly ahead of 2PC.
        assert sss >= rococo * 0.95
        assert sss > twopc
