"""Fault-plane availability: all four protocols under crash and partition.

The original papers evaluated Walter and ROCOCO under failures; the SSS
paper only argues fail-free behaviour on shared infrastructure.  This
benchmark closes that gap on the reproduction's side: every protocol runs
the same workload under increasing fault intensity, and the per-phase
availability (phase throughput relative to the run's best fail-free phase)
is recorded to ``BENCH_faults.json``.

Intensities:

* ``none`` — fail-free control (availability trivially 1.0, no phases);
* ``crash`` — one node crash-stops a quarter into the run and restarts
  after 15 % of the run;
* ``crash+partition`` — the crash plus a buffered (eventual-delivery)
  partition later in the run;
* ``churn`` — rolling restarts: every node crash-stops in turn (staggered
  windows covering most of the run), measuring steady-state availability
  under continuous churn;
* ``minority-part`` / ``split-part`` — a buffered partition cutting off a
  single node vs. splitting the cluster in half, mid-run (the two coincide
  in shape at 3 nodes; the contrast appears from 4 nodes up).

What to expect (and what the assertions pin, loosely, because this is a
scaled-down simulator sweep): availability collapses during the fault
windows and recovers after crash-recovery/heal — and **every** protocol
keeps its own consistency contract under every intensity.  Since the
crash-consistency work (ROCOCO's piece redo log with order fencing,
Walter's durable ack-watermarked propagation), the weaker protocols no
longer trade correctness for availability: each point runs with history
recording and its protocol's contract checks (external consistency for
SSS/2PC, serializability plus committed reads for ROCOCO, committed reads
plus replica convergence for Walter) are asserted unconditionally —
availability during the fault window is the only remaining cost.

Environment: ``REPRO_BENCH_FAULTS_DURATION_US`` overrides the per-point
duration (default: the suite-wide ``REPRO_BENCH_DURATION_US``).

``REPRO_BENCH_FAULTS_TRAFFIC`` switches the whole sweep to **open-loop**
load: set it to a traffic phase spec (e.g. ``"poisson rate=6000"``) and
every point runs under that constant offered load instead of closed-loop
clients.  Closed-loop clients self-throttle during a fault — the crashed
node's clients simply stop issuing, flattering the availability number —
whereas under constant offered traffic, lost capacity shows up as lost
goodput and shed arrivals, which is the honest availability a production
deployment would see.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.common import (
    RECORDER,
    SETTINGS,
    flush_bench_json,
    run_once,
    shape_checks_enabled,
)
from repro.common.config import ClusterConfig, FaultPlan, TrafficPlan, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentPoint, run_points

#: (protocol, replication degree) — ROCOCO is compared without replication,
#: as in the paper's Figure 6 configuration.
PROTOCOLS = (("sss", 2), ("2pc", 2), ("walter", 2), ("rococo", 1))

DURATION_US = float(os.environ.get("REPRO_BENCH_FAULTS_DURATION_US", SETTINGS.duration_us))

#: Optional open-loop mode: a traffic phase spec driving every point at
#: constant offered load (e.g. "poisson rate=6000"); empty = closed loop.
TRAFFIC_SPEC = os.environ.get("REPRO_BENCH_FAULTS_TRAFFIC", "").strip()


def _traffic_plan() -> TrafficPlan:
    if not TRAFFIC_SPEC:
        return TrafficPlan()
    return TrafficPlan.parse([TRAFFIC_SPEC])


def _fault_plan(intensity: str, duration_us: float, n_nodes: int) -> FaultPlan:
    """The fault schedule for one intensity level, scaled to the duration."""
    crash_at = 0.25 * duration_us
    crash_for = 0.15 * duration_us
    partition_at = 0.60 * duration_us
    partition_for = 0.15 * duration_us
    victim = 1 % n_nodes
    if intensity == "none":
        return FaultPlan()
    if intensity == "crash":
        return FaultPlan.parse([f"crash node={victim} at={crash_at} for={crash_for}"])
    if intensity == "crash+partition":
        rest = ",".join(str(node) for node in range(1, n_nodes))
        return FaultPlan.parse(
            [
                f"crash node={victim} at={crash_at} for={crash_for}",
                f"partition groups=0|{rest} at={partition_at} for={partition_for}",
            ]
        )
    if intensity == "churn":
        # Rolling restart: crash node i at staggered offsets, one node down
        # at a time, windows covering the middle ~60 % of the run.
        stagger = 0.6 * duration_us / n_nodes
        down_for = 0.6 * stagger
        return FaultPlan.parse(
            [
                f"crash node={node} at={0.2 * duration_us + node * stagger} "
                f"for={down_for}"
                for node in range(n_nodes)
            ]
        )
    if intensity == "minority-part":
        rest = ",".join(str(node) for node in range(1, n_nodes))
        return FaultPlan.parse([f"partition groups=0|{rest} at={partition_at} for={partition_for}"])
    if intensity == "split-part":
        # Even split: half the cluster on each side.  At the default 3
        # nodes a two-group partition is always 1-vs-rest so this coincides
        # with minority-part in shape (only the cut membership differs);
        # the contrast appears from 4 nodes up (REPRO_BENCH_NODES).
        half = max(1, n_nodes // 2)
        left = ",".join(str(node) for node in range(half))
        right = ",".join(str(node) for node in range(half, n_nodes))
        return FaultPlan.parse(
            [f"partition groups={left}|{right} at={partition_at} for={partition_for}"]
        )
    raise ValueError(f"unknown intensity {intensity!r}")


INTENSITIES = (
    "none",
    "crash",
    "crash+partition",
    "churn",
    "minority-part",
    "split-part",
)


def _sweep():
    n_nodes = SETTINGS.node_counts[0]
    workload = WorkloadConfig(read_only_fraction=0.5)
    points = [
        ExperimentPoint(
            protocol=protocol,
            config=ClusterConfig(
                n_nodes=n_nodes,
                n_keys=SETTINGS.n_keys,
                replication_degree=min(replication_degree, n_nodes),
                clients_per_node=SETTINGS.clients_per_node,
                seed=SETTINGS.seed,
                faults=_fault_plan(intensity, DURATION_US, n_nodes),
                traffic=_traffic_plan(),
            ),
            workload=workload,
            duration_us=DURATION_US,
            warmup_us=0.0,
            label=(protocol, intensity),
            # Contract checking: record the history and run the protocol's
            # own consistency checks in the worker; the uniform drain keeps
            # the convergence check valid for the fail-free control too.
            record_history=True,
            drain_us=25_000.0,
        )
        for protocol, replication_degree in PROTOCOLS
        for intensity in INTENSITIES
    ]
    availability = {}
    for (protocol, intensity), result in run_points(points):
        RECORDER.record(result)
        metrics = result.metrics
        availability[(protocol, intensity)] = {
            "availability_min": metrics.extra.get("availability_min"),
            "stalled_clients": metrics.extra.get("stalled_clients", 0.0),
            "leaked_writers": metrics.extra.get("quiescence_leaked_writers", 0.0),
            "phases": metrics.phases,
            "committed": metrics.committed,
            "consistency_ok": metrics.extra.get("consistency_ok"),
            "consistency_violations": metrics.extra.get("consistency_violations", 0.0),
            "consistency_detail": metrics.extra.get("consistency_detail", ""),
            # Open-loop mode only: what the constant offered load revealed.
            "offered": metrics.extra.get("offered"),
            "goodput_tps": metrics.extra.get("goodput_tps"),
            "shed": (
                metrics.extra.get("dropped", 0.0) + metrics.extra.get("timed_out", 0.0)
                if TRAFFIC_SPEC
                else None
            ),
        }
    return availability


@pytest.mark.benchmark(group="faults")
def test_fault_availability(benchmark):
    availability = run_once(benchmark, _sweep)
    payload = flush_bench_json("faults")
    assert payload["totals"]["datapoints"] == len(PROTOCOLS) * len(INTENSITIES)

    rows = {}
    for protocol, _rf in PROTOCOLS:
        rows[protocol] = [
            (
                availability[(protocol, intensity)]["availability_min"]
                if intensity != "none"
                else 1.0
            )
            or 0.0
            for intensity in INTENSITIES
        ]
    print()
    print(
        format_table(
            f"Fault availability (min per-phase, {SETTINGS.node_counts[0]} nodes, "
            f"{DURATION_US / 1000:.0f} ms)",
            list(INTENSITIES),
            rows,
        )
    )

    # Structural invariants, valid at any duration: every faulty point
    # reports phases, and availabilities are well-formed fractions.
    for (protocol, intensity), point in availability.items():
        if intensity == "none":
            if not TRAFFIC_SPEC:
                assert not point["phases"], "fail-free runs have no fault phases"
            continue
        assert point["phases"], f"{protocol}/{intensity} lost its phase report"
        for phase in point["phases"]:
            if phase["availability"] is not None:
                assert 0.0 <= phase["availability"] <= 1.0

    # Crash consistency, valid at any duration and asserted unconditionally:
    # every protocol keeps its own contract under every fault intensity.
    for (protocol, intensity), point in availability.items():
        assert point["consistency_ok"] == 1.0, (
            f"{protocol}/{intensity} violated its consistency contract "
            f"({point['consistency_violations']:.0f} violations): "
            f"{point['consistency_detail']}"
        )

    if not shape_checks_enabled():
        return
    for protocol, _rf in PROTOCOLS:
        none_committed = availability[(protocol, "none")]["committed"]
        crash_committed = availability[(protocol, "crash")]["committed"]
        # Faults must actually bite: a crash window cannot leave throughput
        # untouched.
        assert crash_committed < none_committed, (
            f"{protocol}: crash intensity did not reduce committed work"
        )
        # The fault windows themselves must show degraded availability.
        crash_phases = [
            phase
            for phase in availability[(protocol, "crash")]["phases"]
            if "crash" in phase["label"] and phase["availability"] is not None
        ]
        assert crash_phases and min(p["availability"] for p in crash_phases) < 0.8
    # SSS must recover after the crash heals: its final fail-free phase beats
    # its crash phase.
    sss_phases = availability[("sss", "crash")]["phases"]
    crash_avail = next(p["availability"] for p in sss_phases if "crash" in p["label"])
    tail_avail = sss_phases[-1]["availability"]
    assert tail_avail is not None and tail_avail > crash_avail, (
        "SSS availability failed to recover after the crash window"
    )
