"""Heavy-traffic scale pin: events/sec *and* memory high-water mark.

The ROADMAP's north star is millions of user sessions against large key
spaces; the figures so far only pin simulator *speed*.  This benchmark
pins the other axis the streaming harness bought: **memory**.  It drives
one SSS cluster at open-loop Poisson load with every bounded-memory path
enabled — streaming metrics (quantile sketches, windowed time series) and
the windowed online consistency checker — and measures the Python-heap
high-water mark with :mod:`tracemalloc` at two run lengths, ``D`` and
``2*D``.

Doubling the run length doubles the transaction count but must *not*
double the memory: with per-transaction records gone, the high-water mark
is dominated by the key store (constant in transaction count) plus the
bounded retained window and sketches.  The sub-linearity assertion
(``peak(2D) <= SUBLINEAR_FACTOR * peak(D)``) is what fails if anyone
reintroduces an unbounded per-transaction list anywhere on the hot path.

At the default (full-scale) settings the run satisfies the scale floor
this figure exists to document: **>= 1M keys** in the store and **>= 100k
open-loop sessions** (arrivals) per measured run.  CI runs the same bench
scaled down via the env knobs purely to gate simulator performance and
memory against the committed baseline; the sub-linearity assertion holds
at every scale.

Emits ``BENCH_scale.json`` with the usual per-point performance records
plus a ``memory`` section (peaks at D and 2D, the ratio, and the windowed
checker's retention counters).  ``benchmarks/check_regression.py`` gates
``totals.events_per_sec`` (floor) and ``totals.memory_high_water_bytes``
(ceiling) against ``benchmarks/baselines/BENCH_scale.json``.

Environment knobs:

* ``REPRO_BENCH_SCALE_KEYS`` — key-space size (default 1_000_000);
* ``REPRO_BENCH_SCALE_RATE_TPS`` — offered Poisson load (default 120_000);
* ``REPRO_BENCH_SCALE_DURATION_US`` — the short run length ``D``; the
  second run is ``2*D`` (default 1_000_000, i.e. one simulated second);
* ``REPRO_BENCH_SCALE_EPOCH_US`` / ``REPRO_BENCH_SCALE_RETENTION_US`` —
  windowed-checker epoch and retention (defaults 5_000 / 15_000, small
  enough that epochs close and prune even in short CI runs).
"""

from __future__ import annotations

import gc
import json
import os
import tracemalloc

import pytest

from benchmarks.common import RECORDER, flush_bench_json
from repro.common.config import ClusterConfig, TrafficPlan, WorkloadConfig
from repro.consistency.window import WindowedConsistencyChecker, WindowedHistoryRecorder
from repro.harness.runner import run_experiment

N_KEYS = int(os.environ.get("REPRO_BENCH_SCALE_KEYS", 1_000_000))
RATE_TPS = int(os.environ.get("REPRO_BENCH_SCALE_RATE_TPS", 120_000))
DURATION_US = float(os.environ.get("REPRO_BENCH_SCALE_DURATION_US", 1_000_000))
EPOCH_US = float(os.environ.get("REPRO_BENCH_SCALE_EPOCH_US", 5_000))
RETENTION_US = float(os.environ.get("REPRO_BENCH_SCALE_RETENTION_US", 15_000))

N_NODES = 3
SEED = 2024

#: Full-scale floors this figure documents (asserted only when the env
#: knobs have not scaled the run down, e.g. in CI).
FULL_SCALE_KEYS = 1_000_000
FULL_SCALE_SESSIONS = 100_000

#: Memory at 2x the transactions may grow by at most this factor.  A
#: linear (per-transaction) term would push the ratio toward 2.0; the
#: bounded design keeps it near 1.0 plus allocator noise.
SUBLINEAR_FACTOR = 1.6


def at_full_scale() -> bool:
    return N_KEYS >= FULL_SCALE_KEYS and RATE_TPS * (DURATION_US / 1e6) >= FULL_SCALE_SESSIONS


def _measured_run(duration_us: float):
    """One streaming+windowed run under tracemalloc; returns (result, peak)."""
    config = ClusterConfig(
        n_nodes=N_NODES,
        n_keys=N_KEYS,
        replication_degree=2,
        clients_per_node=0,
        seed=SEED,
        traffic=TrafficPlan.parse([f"poisson rate={RATE_TPS}"]),
    )
    recorder = WindowedHistoryRecorder(
        checker=WindowedConsistencyChecker(epoch_us=EPOCH_US, retention_us=RETENTION_US)
    )
    gc.collect()
    tracemalloc.start()
    try:
        result = run_experiment(
            "sss",
            config,
            WorkloadConfig(read_only_fraction=0.5),
            duration_us=duration_us,
            warmup_us=0.25 * duration_us,
            record_history=recorder,
            streaming_metrics=True,
        )
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, recorder, int(peak)


def _scale_sweep():
    runs = {}
    for label, duration_us in (("d", DURATION_US), ("2d", 2.0 * DURATION_US)):
        result, recorder, peak = _measured_run(duration_us)
        RECORDER.record(result)
        check = recorder.check_external_consistency()
        assert check.ok, f"windowed external consistency failed at {label}: {check.violations[:3]}"
        runs[label] = {
            "duration_us": duration_us,
            "offered": int(result.metrics.extra["offered"]),
            "committed": result.metrics.committed,
            "events_per_sec": (
                round(result.metrics.extra["sim_events"] / result.metrics.extra["wall_seconds"])
                if result.metrics.extra["wall_seconds"] > 0
                else 0
            ),
            "memory_high_water_bytes": peak,
            "checker": recorder.checker.stats(),
        }
        del result, recorder
    return runs


@pytest.mark.benchmark(group="scale")
def test_scale_memory_and_throughput(benchmark):
    runs = benchmark.pedantic(_scale_sweep, rounds=1, iterations=1, warmup_rounds=0)
    short, long = runs["d"], runs["2d"]

    # The long run really did roughly double the work...
    assert long["offered"] > 1.5 * short["offered"]
    # ...while the heap high-water mark stayed sub-linear in it.
    ratio = long["memory_high_water_bytes"] / max(short["memory_high_water_bytes"], 1)
    assert ratio <= SUBLINEAR_FACTOR, (
        f"memory grew {ratio:.2f}x when transactions doubled — a per-transaction "
        f"term is back on the hot path (peaks: {short['memory_high_water_bytes']} "
        f"-> {long['memory_high_water_bytes']} bytes)"
    )
    # The windowed checker really was pruning (bounded retention), so the
    # flat memory is not explained by the checker silently buffering.
    for label in ("d", "2d"):
        assert runs[label]["checker"]["epochs_closed"] > 0, label
        assert runs[label]["checker"]["pruned"] > 0, label

    if at_full_scale():
        assert N_KEYS >= FULL_SCALE_KEYS
        assert short["offered"] >= FULL_SCALE_SESSIONS

    payload = flush_bench_json("scale")
    # Augment the figure JSON with the memory section the gate reads.
    payload["memory"] = {
        "sublinear_factor_allowed": SUBLINEAR_FACTOR,
        "ratio_2d_over_d": round(ratio, 4),
        "runs": runs,
        "full_scale": at_full_scale(),
        "scale_settings": {
            "n_keys": N_KEYS,
            "rate_tps": RATE_TPS,
            "duration_us": DURATION_US,
            "epoch_us": EPOCH_US,
            "retention_us": RETENTION_US,
        },
    }
    payload["totals"]["memory_high_water_bytes"] = long["memory_high_water_bytes"]
    out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
    path = os.path.join(out_dir, "BENCH_scale.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
