"""Cluster-size scaling sweep: the metadata plane under growing clock width.

The paper's central scalability tension is that vector clocks grow linearly
with the server count, so every message's metadata gets wider as the cluster
scales — and its answer is wire-level delta compression (Section III-A,
reproduced in :mod:`repro.clocks.compression` and wired into the transport's
size accounting).  This sweep runs SSS from 4 to 256 servers and records,
per datapoint, both the simulator's own performance (events/sec, wall
seconds) and the clock-metadata accounting: mean/max encoded clock bytes per
message and the achieved compression ratio against the dense ``8 * n_nodes``
representation.  ``BENCH_scaling.json`` is the machine-readable output the
CI smoke job gates on.

Points at or above ``REPRO_BENCH_SCALING_PARALLEL_FROM`` servers run on the
node-sharded conservative engine (``engine="parallel"``) — the single-core
event loop is what capped this sweep at 64 servers; the parallel points also
record per-shard utilization and null-message/sync-round overhead counters
so the conservative-synchronization cost is visible in the JSON, and a
serial/parallel pair at the crossover width pins that the engines agree on
the figure's numbers.

Every datapoint uses bounded-memory accounting by default: streaming
metrics plus — on the serial points — windowed online consistency checking
(``record_history="windowed"``; its verdict lands in ``consistency_ok``).
The parallel engine keeps history recording off here: its full-history mode
exists for the digest-equivalence tests, and windowed checking is a
serial-path feature.

The sweep holds the *total* offered load fixed (classic scale-out design:
the same client population spread over more servers) rather than growing it
with the cluster; with per-node load fixed instead, the inter-message gap on
every channel grows with the cluster and the reference clocks go stale,
which measures load growth, not clock-width growth.  Past
``REPRO_BENCH_SCALING_CLIENTS`` servers the per-node count floors at one
client per node, so load grows again — which only makes the wall-clock
parity target (256 parallel vs 64 serial) harder, not easier.

Environment knobs (on top of the shared ones in :mod:`benchmarks.common`):

* ``REPRO_BENCH_SCALING_NODES`` — comma-separated server counts
  (default ``4,8,16,32,64,128,256``).
* ``REPRO_BENCH_SCALING_CLIENTS`` — total closed-loop clients spread over
  the cluster (default 64; per-node count is ``max(1, total // n_nodes)``).
* ``REPRO_BENCH_SCALING_DURATION_US`` — simulated microseconds per datapoint
  (default: the shared ``REPRO_BENCH_DURATION_US``, capped at 40 000 — the
  widest points cost real wall-clock time).
* ``REPRO_BENCH_SCALING_PARALLEL_FROM`` — server count at which points
  switch to the parallel engine (default 128; ``0`` forces parallel
  everywhere, a huge value forces serial everywhere).
* ``REPRO_BENCH_SCALING_SHARDS`` — shard count for the parallel points
  (default: the engine's own default, up to 4).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.common import (
    RECORDER,
    SETTINGS,
    flush_bench_json,
    run_once,
    shape_checks_enabled,
)
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentPoint, run_points


def _scaling_nodes() -> tuple:
    raw = os.environ.get("REPRO_BENCH_SCALING_NODES", "4,8,16,32,64,128,256")
    return tuple(int(part) for part in raw.split(",") if part)


def _scaling_duration_us() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALING_DURATION_US")
    if raw:
        return float(raw)
    return min(SETTINGS.duration_us, 40_000.0)


def _total_clients() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALING_CLIENTS", 64))


def _parallel_from() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALING_PARALLEL_FROM", 128))


def _parallel_shards():
    raw = os.environ.get("REPRO_BENCH_SCALING_SHARDS")
    return int(raw) if raw else None


@pytest.mark.benchmark(group="scaling")
def test_scaling_servers(benchmark):
    """4 -> 256 servers: throughput, events/sec and encoded clock bytes."""
    node_counts = _scaling_nodes()
    duration_us = _scaling_duration_us()
    warmup_us = min(SETTINGS.warmup_us, duration_us / 4)
    total_clients = _total_clients()
    parallel_from = _parallel_from()
    shards = _parallel_shards()
    workload = WorkloadConfig(read_only_fraction=0.5, read_only_txn_keys=2)

    def _point(n_nodes: int) -> ExperimentPoint:
        parallel = n_nodes >= parallel_from
        return ExperimentPoint(
            protocol="sss",
            config=ClusterConfig(
                n_nodes=n_nodes,
                n_keys=SETTINGS.n_keys,
                replication_degree=2,
                clients_per_node=max(1, total_clients // n_nodes),
                seed=SETTINGS.seed,
            ),
            workload=workload,
            duration_us=duration_us,
            warmup_us=warmup_us,
            label=n_nodes,
            streaming_metrics=True,
            record_history=False if parallel else "windowed",
            engine="parallel" if parallel else "serial",
            shards=shards if parallel else None,
        )

    def sweep():
        points = [_point(n_nodes) for n_nodes in node_counts]
        results = {}
        for n_nodes, result in run_points(points):
            RECORDER.record(result)
            results[n_nodes] = result.metrics
        return results

    results = run_once(benchmark, sweep)
    payload = flush_bench_json("scaling")
    wall_by_nodes = {
        point["n_nodes"]: point["wall_seconds"] for point in payload["datapoints"]
    }

    columns = [f"{n} srv" for n in node_counts]
    rows = {
        "throughput (KTx/s)": [
            results[n].throughput_ktps for n in node_counts
        ],
        "clock B/clock (delta)": [
            results[n].clock_bytes_mean for n in node_counts
        ],
        "clock B/clock (dense)": [float(1 + 8 * n) for n in node_counts],
        "saved B/clock": [
            (1 + 8 * n) - results[n].clock_bytes_mean for n in node_counts
        ],
        "compression ratio": [
            results[n].clock_compression_ratio for n in node_counts
        ],
        "wall seconds": [wall_by_nodes[n] for n in node_counts],
        "shards": [
            float(results[n].extra.get("parallel_shards", 0)) for n in node_counts
        ],
    }
    print()
    print(
        format_table(
            f"Cluster-size sweep (SSS, 50% read-only, rf=2, "
            f"{SETTINGS.n_keys} keys)",
            columns,
            rows,
            value_format="{:.2f}",
        )
    )
    print(
        "totals: events/sec="
        f"{payload['totals']['events_per_sec']}, "
        f"datapoints={payload['totals']['datapoints']}"
    )
    for n_nodes in node_counts:
        extra = results[n_nodes].extra
        if extra.get("parallel_shards") is not None:
            print(
                f"parallel {n_nodes} srv: shards={extra['parallel_shards']}, "
                f"sync_rounds={extra['parallel_sync_rounds']}, "
                f"null_messages={extra['parallel_null_messages']}, "
                f"cross_shard_messages={extra['parallel_cross_shard_messages']}, "
                f"shard_utilization_min={extra['parallel_shard_utilization_min']}"
            )

    # The sweep must actually have recorded clock metadata at every point,
    # and every windowed-checked (serial) point must have kept the contract.
    for n_nodes in node_counts:
        assert results[n_nodes].clock_bytes_mean is not None
        verdict = results[n_nodes].extra.get("consistency_ok")
        if verdict is not None:
            assert verdict == 1.0, f"consistency violated at {n_nodes} servers"

    if not shape_checks_enabled():
        return
    smallest, largest = node_counts[0], node_counts[-1]
    # Delta compression must beat the dense representation at every width,
    # and the *absolute* bytes saved per clock must grow as clocks widen —
    # that is where compression bends the metadata-bytes curve away from
    # the dense one.  (The *ratio* legitimately degrades with the cluster
    # at steady-state load: more servers commit between two messages of any
    # one channel, so the per-channel reference clock goes staler; the
    # sweep records that effect rather than hiding it.)
    for n_nodes in node_counts:
        assert results[n_nodes].clock_compression_ratio < 1.0, (
            f"compression must beat dense clocks at {n_nodes} servers"
        )
    saved_small = (1 + 8 * smallest) - results[smallest].clock_bytes_mean
    saved_large = (1 + 8 * largest) - results[largest].clock_bytes_mean
    assert saved_large > saved_small, (
        "absolute bytes saved per clock must grow with the clock width"
    )
    # The reason the parallel engine exists: the widest (parallel) point
    # must run in no more wall-clock than the 64-server serial point, even
    # though past 64 servers the floored per-node client count makes the
    # wide points carry *more* total load.  Wall-clock parity needs the
    # cores the shards were asked for; on narrower hosts (this includes
    # the CI smoke runners) the machine-independent form of the same claim
    # is asserted instead — the busiest shard's event-loop time (the
    # parallel critical path, which *is* the wall on a wide-enough host)
    # must fit the 64-server serial budget.
    if 64 in wall_by_nodes and largest >= 256 and largest >= parallel_from:
        largest_shards = int(results[largest].extra["parallel_shards"])
        busy_max = float(results[largest].extra["parallel_shard_busy_max_s"])
        try:
            usable_cores = len(os.sched_getaffinity(0))
        except AttributeError:
            usable_cores = os.cpu_count() or 1
        if usable_cores >= largest_shards >= 4:
            assert wall_by_nodes[largest] <= wall_by_nodes[64], (
                f"{largest}-server parallel point took {wall_by_nodes[largest]}s, "
                f"worse than the 64-server serial point ({wall_by_nodes[64]}s)"
            )
        else:
            print(
                f"note: {usable_cores} usable cores < {largest_shards} shards — "
                f"checking the parallel critical path instead of wall-clock "
                f"(busiest shard {busy_max:.2f}s vs 64-server serial "
                f"{wall_by_nodes[64]:.2f}s)"
            )
            assert busy_max <= wall_by_nodes[64], (
                f"busiest shard of the {largest}-server point needed "
                f"{busy_max:.2f}s of event-loop time, more than the whole "
                f"64-server serial point ({wall_by_nodes[64]:.2f}s) — the "
                f"parallel engine cannot reach wall-clock parity on any host"
            )
