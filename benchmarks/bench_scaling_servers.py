"""Cluster-size scaling sweep: the metadata plane under growing clock width.

The paper's central scalability tension is that vector clocks grow linearly
with the server count, so every message's metadata gets wider as the cluster
scales — and its answer is wire-level delta compression (Section III-A,
reproduced in :mod:`repro.clocks.compression` and wired into the transport's
size accounting).  This sweep runs SSS from 4 to 64 servers and records, per
datapoint, both the simulator's own performance (events/sec, wall seconds)
and the clock-metadata accounting: mean/max encoded clock bytes per message
and the achieved compression ratio against the dense ``8 * n_nodes``
representation.  ``BENCH_scaling.json`` is the machine-readable output the
CI smoke job gates on.

The sweep holds the *total* offered load fixed (classic scale-out design:
the same client population spread over more servers) rather than growing it
with the cluster; with per-node load fixed instead, the inter-message gap on
every channel grows with the cluster and the reference clocks go stale,
which measures load growth, not clock-width growth.

Environment knobs (on top of the shared ones in :mod:`benchmarks.common`):

* ``REPRO_BENCH_SCALING_NODES`` — comma-separated server counts
  (default ``4,8,16,32,64``).
* ``REPRO_BENCH_SCALING_CLIENTS`` — total closed-loop clients spread over
  the cluster (default 64; per-node count is ``max(1, total // n_nodes)``).
* ``REPRO_BENCH_SCALING_DURATION_US`` — simulated microseconds per datapoint
  (default: the shared ``REPRO_BENCH_DURATION_US``, capped at 40 000 — the
  64-server point costs real wall-clock time).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.common import (
    RECORDER,
    SETTINGS,
    flush_bench_json,
    run_once,
    shape_checks_enabled,
)
from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentPoint, run_points


def _scaling_nodes() -> tuple:
    raw = os.environ.get("REPRO_BENCH_SCALING_NODES", "4,8,16,32,64")
    return tuple(int(part) for part in raw.split(",") if part)


def _scaling_duration_us() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALING_DURATION_US")
    if raw:
        return float(raw)
    return min(SETTINGS.duration_us, 40_000.0)


def _total_clients() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALING_CLIENTS", 64))


@pytest.mark.benchmark(group="scaling")
def test_scaling_servers(benchmark):
    """4 -> 64 servers: throughput, events/sec and encoded clock bytes."""
    node_counts = _scaling_nodes()
    duration_us = _scaling_duration_us()
    warmup_us = min(SETTINGS.warmup_us, duration_us / 4)
    total_clients = _total_clients()
    workload = WorkloadConfig(read_only_fraction=0.5, read_only_txn_keys=2)

    def sweep():
        points = [
            ExperimentPoint(
                protocol="sss",
                config=ClusterConfig(
                    n_nodes=n_nodes,
                    n_keys=SETTINGS.n_keys,
                    replication_degree=2,
                    clients_per_node=max(1, total_clients // n_nodes),
                    seed=SETTINGS.seed,
                ),
                workload=workload,
                duration_us=duration_us,
                warmup_us=warmup_us,
                label=n_nodes,
            )
            for n_nodes in node_counts
        ]
        results = {}
        for n_nodes, result in run_points(points):
            RECORDER.record(result)
            results[n_nodes] = result.metrics
        return results

    results = run_once(benchmark, sweep)
    payload = flush_bench_json("scaling")

    columns = [f"{n} srv" for n in node_counts]
    rows = {
        "throughput (KTx/s)": [
            results[n].throughput_ktps for n in node_counts
        ],
        "clock B/clock (delta)": [
            results[n].clock_bytes_mean for n in node_counts
        ],
        "clock B/clock (dense)": [float(1 + 8 * n) for n in node_counts],
        "saved B/clock": [
            (1 + 8 * n) - results[n].clock_bytes_mean for n in node_counts
        ],
        "compression ratio": [
            results[n].clock_compression_ratio for n in node_counts
        ],
    }
    print()
    print(
        format_table(
            f"Cluster-size sweep (SSS, 50% read-only, rf=2, "
            f"{SETTINGS.n_keys} keys)",
            columns,
            rows,
            value_format="{:.2f}",
        )
    )
    print(
        "totals: events/sec="
        f"{payload['totals']['events_per_sec']}, "
        f"datapoints={payload['totals']['datapoints']}"
    )

    # The sweep must actually have recorded clock metadata at every point.
    for n_nodes in node_counts:
        assert results[n_nodes].clock_bytes_mean is not None

    if not shape_checks_enabled():
        return
    smallest, largest = node_counts[0], node_counts[-1]
    # Delta compression must beat the dense representation at every width,
    # and the *absolute* bytes saved per clock must grow as clocks widen —
    # that is where compression bends the metadata-bytes curve away from
    # the dense one.  (The *ratio* legitimately degrades with the cluster
    # at steady-state load: more servers commit between two messages of any
    # one channel, so the per-channel reference clock goes staler; the
    # sweep records that effect rather than hiding it.)
    for n_nodes in node_counts:
        assert results[n_nodes].clock_compression_ratio < 1.0, (
            f"compression must beat dense clocks at {n_nodes} servers"
        )
    saved_small = (1 + 8 * smallest) - results[smallest].clock_bytes_mean
    saved_large = (1 + 8 * largest) - results[largest].clock_bytes_mean
    assert saved_large > saved_small, (
        "absolute bytes saved per clock must grow with the clock width"
    )
