"""Figure 3: throughput of SSS vs 2PC-baseline vs Walter.

The paper varies the percentage of read-only transactions (20 %, 50 %, 80 %)
and the node count (5-20) with replication degree 2 and two key-space sizes.
Expected shape: Walter >= SSS >= 2PC-baseline at every point; the SSS-Walter
gap narrows as the read-only share grows (2x -> 1.1x in the paper); the
SSS / 2PC-baseline gap widens (up to 7x in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    SETTINGS,
    ktps_rows,
    run_once,
    shape_checks_enabled,
    throughput_sweep,
)
from repro.harness.reporting import format_table

PROTOCOLS = ("sss", "2pc", "walter")


def _sweep(read_only_fraction: float):
    return throughput_sweep(
        PROTOCOLS,
        SETTINGS.node_counts,
        read_only_fraction,
        replication_degree=2,
    )


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("read_only_pct", [20, 50, 80])
def test_fig3_throughput(benchmark, read_only_pct):
    read_only_fraction = read_only_pct / 100.0

    def sweep():
        return _sweep(read_only_fraction)

    results = run_once(benchmark, sweep)
    rows = ktps_rows(results)
    print()
    print(
        format_table(
            f"Figure 3 ({read_only_pct}% read-only): throughput (KTx/s), "
            f"{SETTINGS.n_keys} keys, rf=2",
            [f"{n} nodes" for n in SETTINGS.node_counts],
            rows,
        )
    )

    if not shape_checks_enabled():
        return
    largest = SETTINGS.node_counts[-1]
    sss = results["sss"][largest].throughput_ktps
    twopc = results["2pc"][largest].throughput_ktps
    walter = results["walter"][largest].throughput_ktps

    # Shape assertions (loose: simulator, scaled-down sweep).
    assert walter >= sss * 0.95, "Walter (PSI) should lead or match SSS"
    if read_only_pct >= 50:
        assert sss > twopc, "SSS must beat 2PC-baseline in read-dominated workloads"

    # The paper reports 2PC-baseline abort rates well above SSS's because its
    # read-only transactions validate and can abort.
    assert results["2pc"][largest].abort_rate >= results["sss"][largest].abort_rate


@pytest.mark.benchmark(group="fig3")
def test_fig3_walter_gap_narrows_with_read_only_share(benchmark):
    """The SSS-to-Walter gap shrinks as read-only transactions dominate."""

    def sweep():
        gaps = {}
        for read_only_fraction in (0.2, 0.8):
            largest = SETTINGS.node_counts[-1]
            results = throughput_sweep(("sss", "walter"), [largest], read_only_fraction)
            walter = results["walter"][largest].throughput_ktps
            sss = results["sss"][largest].throughput_ktps
            gaps[read_only_fraction] = walter / max(sss, 1e-9)
        return gaps

    gaps = run_once(benchmark, sweep)
    print(f"\nWalter/SSS throughput ratio: 20% read-only = {gaps[0.2]:.2f}, "
          f"80% read-only = {gaps[0.8]:.2f}")
    if shape_checks_enabled():
        assert gaps[0.8] <= gaps[0.2] * 1.15, (
            "the Walter advantage should not grow when read-only transactions dominate"
        )
