"""Figure 8: speedup of SSS as read-only transactions grow from 2 to 16 keys.

At 15 nodes and 80 % read-only transactions (no replication), the paper plots
the throughput ratio of SSS over ROCOCO and over the 2PC-baseline while the
number of keys read by read-only transactions grows from 2 to 16.  Expected
shape: the SSS/ROCOCO speedup grows with the read-set size (1.2x -> 2.2x in
the paper) because ROCOCO's read-only transactions abort and wait more as
they touch more keys; the SSS/2PC speedup grows more slowly.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SETTINGS, run_once, run_point
from repro.harness.reporting import format_table

READ_ONLY_SIZES = (2, 4, 8, 16)


@pytest.mark.benchmark(group="fig8")
def test_fig8_read_only_size_speedup(benchmark):
    n_nodes = SETTINGS.node_counts[-1]

    def sweep():
        throughput = {"sss": {}, "rococo": {}, "2pc": {}}
        for size in READ_ONLY_SIZES:
            for protocol in throughput:
                metrics = run_point(
                    protocol,
                    n_nodes,
                    read_only_fraction=0.8,
                    replication_degree=1,
                    read_only_txn_keys=size,
                )
                throughput[protocol][size] = metrics.throughput_ktps
        return throughput

    throughput = run_once(benchmark, sweep)
    speedups = {
        "SSS/ROCOCO": [
            throughput["sss"][size] / max(throughput["rococo"][size], 1e-9)
            for size in READ_ONLY_SIZES
        ],
        "SSS/2PC": [
            throughput["sss"][size] / max(throughput["2pc"][size], 1e-9)
            for size in READ_ONLY_SIZES
        ],
    }
    print()
    print(
        format_table(
            f"Figure 8: speedup of SSS, {n_nodes} nodes, 80% read-only, "
            "no replication",
            [f"{size} reads" for size in READ_ONLY_SIZES],
            speedups,
            value_format="{:.2f}",
        )
    )
    print(
        format_table(
            "Raw throughput (KTx/s)",
            [f"{size} reads" for size in READ_ONLY_SIZES],
            {name: list(series.values()) for name, series in throughput.items()},
        )
    )

    rococo_speedups = speedups["SSS/ROCOCO"]
    # The advantage over ROCOCO must not shrink as read-only transactions get
    # longer, and must be clearly larger at 16 keys than at 2 keys.
    assert rococo_speedups[-1] >= rococo_speedups[0] * 0.95
    assert rococo_speedups[-1] >= 1.0
