"""Nightly seed sweep of the pathological micro-configuration.

The 4-node / 4-key / rf=1 / high-contention configuration is where the
ambiguous-zone and 4-party wait-cycle defects historically lived (ROADMAP;
seeds 3, 17 and 29 are pinned as strict regressions in
``tests/integration/test_fault_plane.py``).  This driver runs a *range* of
seeds through that configuration and checks every run for

* external-consistency violations (the DSG + real-time cycle check),
* stalled clients at the post-run drain,
* leaked pre-commit state (snapshot-queue writers, commit-queue entries) at
  quiescence, and
* read-only aborts reaching the history (snapshot restarts must stay
  externally invisible).

Each seed runs the configuration under three **fault variants** — fail-free
(``none``), a mid-run crash/restart (``crash``), and the crash plus a later
buffered partition (``crash+partition``), scheduled like the fault bench's
intensities — because the crash-consistency machinery (redo logs, reliable
re-sends, crash recovery) is exactly the code a single pathological seed is
most likely to wedge.  Every variant runs the full check set — external
consistency, stalled clients, quiescence leaks, read-only aborts — since
SSS promises external consistency under faults too (the fault bench and
the fault-plane integration tests assert the same).

Failures write a repro bundle (config + metrics + the failure reason) as
JSON into ``--out`` so the nightly workflow can upload them as artifacts;
the exit status is non-zero when any seed fails.

Usage::

    python benchmarks/seed_sweep.py --seeds 0 63 --out sweep-results
    python benchmarks/seed_sweep.py --seeds 17 17 --duration-us 60000
    python benchmarks/seed_sweep.py --variants crash --seeds 29 29

With ``--corpus-out DIR`` the sweep doubles as the corpus-seeding phase of
the scenario searcher (``python -m repro.search``): every swept (seed,
variant) is also written as a ``*.genome.json`` the searcher can load and
mutate, so nightly search campaigns start from the exact configurations
the sweep already vetted.
"""

from __future__ import annotations

import argparse
import json
import os
from concurrent.futures import ProcessPoolExecutor

from repro.common.config import ClusterConfig, FaultPlan, WorkloadConfig
from repro.harness.runner import run_experiment

PATHOLOGICAL = dict(
    n_nodes=4,
    n_keys=4,
    replication_degree=1,
    clients_per_node=3,
)
WORKLOAD = dict(read_only_fraction=0.5, update_txn_keys=2)

VARIANTS = ("none", "crash", "crash+partition")


def _fault_plan(variant: str, duration_us: float) -> FaultPlan:
    """Fault schedule of one variant, scaled like the fault bench's."""
    if variant == "none":
        return FaultPlan()
    crash = f"crash node=1 at={0.25 * duration_us} for={0.15 * duration_us}"
    if variant == "crash":
        return FaultPlan.parse([crash])
    if variant == "crash+partition":
        rest = ",".join(str(node) for node in range(1, PATHOLOGICAL["n_nodes"]))
        partition = (
            f"partition groups=0|{rest} "
            f"at={0.60 * duration_us} for={0.15 * duration_us}"
        )
        return FaultPlan.parse([crash, partition])
    raise ValueError(f"unknown variant {variant!r}")


def probe_seed(args):
    """Run one (seed, variant); returns a picklable result record."""
    seed, variant, duration_us, drain_us = args
    config = ClusterConfig(
        seed=seed,
        faults=_fault_plan(variant, duration_us),
        **PATHOLOGICAL,
    )
    result = run_experiment(
        "sss",
        config,
        WorkloadConfig(**WORKLOAD),
        duration_us=duration_us,
        warmup_us=0.0,
        record_history=True,
        keep_cluster=True,
        drain_us=drain_us,
    )
    check = result.cluster.check_consistency()
    metrics = result.metrics
    read_only_aborts = [
        str(txn.txn_id)
        for txn in result.cluster.history.aborted
        if not txn.is_update
    ]
    failures = []
    if not check.ok:
        failures.append(f"external-consistency: {check.violations}")
    if metrics.extra.get("stalled_clients"):
        failures.append(f"stalled_clients={metrics.extra['stalled_clients']}")
    if metrics.extra.get("quiescence_leaked_writers"):
        failures.append(
            f"quiescence_leaked_writers="
            f"{metrics.extra['quiescence_leaked_writers']}"
        )
    if metrics.extra.get("quiescence_commit_queue"):
        failures.append(f"quiescence_commit_queue=" f"{metrics.extra['quiescence_commit_queue']}")
    if read_only_aborts:
        failures.append(f"read-only aborts in history: {read_only_aborts}")
    return {
        "seed": seed,
        "variant": variant,
        "failures": failures,
        "committed": metrics.committed,
        "aborted": metrics.aborted,
        "readonly_restarts": result.node_counters.get("readonly_restarts", 0),
        "reads_rt_stale": result.node_counters.get("reads_rt_stale", 0),
        "answer_gates": result.node_counters.get("answer_gates_registered", 0),
        "crash_recoveries": result.node_counters.get("crash_recoveries", 0),
        "config": {**PATHOLOGICAL, "seed": seed},
        "workload": WORKLOAD,
        "faults": config.faults.specs(),
        "duration_us": duration_us,
        "drain_us": drain_us,
    }


def _write_corpus_genome(record, corpus_dir: str) -> str:
    """Persist one swept configuration as a searcher corpus genome."""
    from repro.search.genome import ScenarioGenome

    genome = ScenarioGenome(
        protocol="sss",
        seed=record["seed"],
        duration_us=record["duration_us"],
        drain_us=record["drain_us"],
        fault_specs=tuple(record["faults"]),
        **{key: value for key, value in PATHOLOGICAL.items()},
        **{key: value for key, value in WORKLOAD.items()},
    ).normalize()
    path = os.path.join(
        corpus_dir, f"sweep-seed{record['seed']}-{record['variant']}.genome.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(genome.to_json() + "\n")
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seeds",
        nargs=2,
        type=int,
        default=(0, 63),
        metavar=("FIRST", "LAST"),
        help="Inclusive seed range to sweep (default 0 63).",
    )
    parser.add_argument("--duration-us", type=float, default=60_000.0)
    parser.add_argument("--drain-us", type=float, default=40_000.0)
    parser.add_argument(
        "--variants",
        nargs="+",
        choices=VARIANTS,
        default=list(VARIANTS),
        help="Fault variants to run per seed (default: all three).",
    )
    parser.add_argument(
        "--out",
        default=os.environ.get("REPRO_SWEEP_OUT", "sweep-results"),
        help="Directory for failure repro bundles and the summary JSON.",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=max(1, (os.cpu_count() or 2) - 1),
    )
    parser.add_argument(
        "--corpus-out",
        default=None,
        help="Also write every swept configuration as a *.genome.json seed "
        "for the scenario searcher (python -m repro.search).",
    )
    args = parser.parse_args()

    first, last = args.seeds
    seeds = list(range(first, last + 1))
    jobs = [
        (seed, variant, args.duration_us, args.drain_us)
        for seed in seeds
        for variant in args.variants
    ]
    if args.parallel > 1 and len(jobs) > 1:
        with ProcessPoolExecutor(max_workers=args.parallel) as pool:
            results = list(pool.map(probe_seed, jobs))
    else:
        results = [probe_seed(job) for job in jobs]

    os.makedirs(args.out, exist_ok=True)
    if args.corpus_out:
        os.makedirs(args.corpus_out, exist_ok=True)
        for record in results:
            _write_corpus_genome(record, args.corpus_out)
        print(f"wrote {len(results)} corpus genomes to {args.corpus_out}")
    failing = [record for record in results if record["failures"]]
    for record in failing:
        path = os.path.join(
            args.out, f"seed-{record['seed']}-{record['variant']}-repro.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(
            f"FAIL seed={record['seed']} variant={record['variant']}: "
            f"{record['failures']} -> {path}"
        )
    summary = {
        "seeds": [first, last],
        "variants": list(args.variants),
        "clean": len(results) - len(failing),
        "failing": [
            {"seed": record["seed"], "variant": record["variant"]}
            for record in failing
        ],
        "total_committed": sum(record["committed"] for record in results),
        "total_restarts": sum(record["readonly_restarts"] for record in results),
    }
    with open(os.path.join(args.out, "sweep-summary.json"), "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print(
        f"seed sweep [{first}, {last}]: {summary['clean']}/{len(results)} clean, "
        f"{summary['total_committed']} committed, "
        f"{summary['total_restarts']} snapshot restarts"
    )
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
