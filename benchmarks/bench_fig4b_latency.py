"""Figure 4(b): external-commit latency, SSS vs 2PC-baseline.

The paper measures begin-to-external-commit latency at 20 nodes, 50 %
read-only, 5k keys, varying the clients per node (1, 3, 5, 10).  Expected
shape: below saturation SSS's latency is roughly half the 2PC-baseline's
(read-only transactions skip the 2PC round entirely); the advantage shrinks
as the client count pushes the system toward saturation.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SETTINGS, run_once, run_point
from repro.harness.reporting import format_table

CLIENT_COUNTS = (1, 3, 5, 10)


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_external_commit_latency(benchmark):
    n_nodes = SETTINGS.node_counts[-1]

    def sweep():
        results = {}
        for protocol in ("sss", "2pc"):
            results[protocol] = {}
            for clients in CLIENT_COUNTS:
                metrics = run_point(
                    protocol,
                    n_nodes,
                    read_only_fraction=0.5,
                    clients_per_node=clients,
                )
                results[protocol][clients] = metrics.latency.mean_ms
        return results

    results = run_once(benchmark, sweep)
    rows = {name: list(series.values()) for name, series in results.items()}
    print()
    print(
        format_table(
            f"Figure 4(b): mean external-commit latency (ms), {n_nodes} nodes, "
            "50% read-only",
            [f"{c} clients" for c in CLIENT_COUNTS],
            rows,
            value_format="{:.3f}",
        )
    )

    # Below saturation SSS answers faster than the 2PC-baseline.
    low_load_clients = CLIENT_COUNTS[0]
    assert results["sss"][low_load_clients] < results["2pc"][low_load_clients]
    # Latency grows (or at least does not shrink) with the client count for
    # both systems: the closed loop pushes them toward saturation.
    assert results["sss"][CLIENT_COUNTS[-1]] >= results["sss"][low_load_clients] * 0.8
    assert results["2pc"][CLIENT_COUNTS[-1]] >= results["2pc"][low_load_clients] * 0.8
